// Tests for the AFT node: Table 1 API semantics, the write-ordering commit
// protocol, crash injection, bootstrap recovery, multicast merging and GC.

#include <gtest/gtest.h>

#include <optional>

#include "src/core/aft_node.h"
#include "src/storage/sim_dynamo.h"

namespace aft {
namespace {

SimDynamoOptions InstantDynamo() {
  SimDynamoOptions options;
  options.profile = EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero()};
  options.staleness = StalenessModel{};
  options.txn_call = LatencyModel::Zero();
  return options;
}

class AftNodeTest : public ::testing::Test {
 protected:
  AftNodeTest() : storage_(clock_, InstantDynamo()) {}

  std::unique_ptr<AftNode> MakeNode(const std::string& id, AftNodeOptions options = {}) {
    auto node = std::make_unique<AftNode>(id, storage_, clock_, options);
    EXPECT_TRUE(node->Start().ok());
    return node;
  }

  // Commits a transaction writing the given key/value pairs; returns its ID.
  TxnId CommitSimple(AftNode& node, const std::vector<std::pair<std::string, std::string>>& kvs) {
    auto txid = node.StartTransaction();
    EXPECT_TRUE(txid.ok());
    for (const auto& [key, value] : kvs) {
      EXPECT_TRUE(node.Put(*txid, key, value).ok());
    }
    auto committed = node.CommitTransaction(*txid);
    EXPECT_TRUE(committed.ok());
    return committed.ok() ? *committed : TxnId();
  }

  std::optional<std::string> ReadOnce(AftNode& node, const std::string& key) {
    auto txid = node.StartTransaction();
    EXPECT_TRUE(txid.ok());
    auto result = node.Get(*txid, key);
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(node.AbortTransaction(*txid).ok());
    return result.ok() ? *result : std::nullopt;
  }

  SimClock clock_;
  SimDynamo storage_;
};

// ---- Basic API -------------------------------------------------------------------

TEST_F(AftNodeTest, ReadYourWrites) {
  auto node = MakeNode("n0");
  auto txid = node->StartTransaction();
  ASSERT_TRUE(txid.ok());
  ASSERT_TRUE(node->Put(*txid, "k", "v1").ok());
  auto read = node->Get(*txid, "k");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->value(), "v1");
  // Overwrite within the transaction: the newer buffered value wins.
  ASSERT_TRUE(node->Put(*txid, "k", "v2").ok());
  EXPECT_EQ(node->Get(*txid, "k")->value(), "v2");
}

TEST_F(AftNodeTest, CommitMakesDataVisibleToLaterTransactions) {
  auto node = MakeNode("n0");
  CommitSimple(*node, {{"k", "hello"}});
  EXPECT_EQ(ReadOnce(*node, "k").value(), "hello");
}

TEST_F(AftNodeTest, UncommittedDataIsInvisible) {
  auto node = MakeNode("n0");
  auto txid = node->StartTransaction();
  ASSERT_TRUE(node->Put(*txid, "k", "secret").ok());
  // Another transaction must not see the buffered write.
  EXPECT_FALSE(ReadOnce(*node, "k").has_value());
}

TEST_F(AftNodeTest, AbortDiscardsUpdates) {
  auto node = MakeNode("n0");
  auto txid = node->StartTransaction();
  ASSERT_TRUE(node->Put(*txid, "k", "doomed").ok());
  ASSERT_TRUE(node->AbortTransaction(*txid).ok());
  EXPECT_FALSE(ReadOnce(*node, "k").has_value());
  // The transaction is gone: further ops fail.
  EXPECT_FALSE(node->Put(*txid, "k", "x").ok());
}

TEST_F(AftNodeTest, MissingKeyReadsNull) {
  auto node = MakeNode("n0");
  EXPECT_FALSE(ReadOnce(*node, "never-written").has_value());
}

TEST_F(AftNodeTest, InvalidKeysAreRejected) {
  auto node = MakeNode("n0");
  auto txid = node->StartTransaction();
  EXPECT_EQ(node->Put(*txid, "", "v").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(node->Put(*txid, "a/b", "v").code(), StatusCode::kInvalidArgument);
}

TEST_F(AftNodeTest, OpsOnUnknownTransactionFail) {
  auto node = MakeNode("n0");
  Rng rng(1);
  const Uuid bogus = Uuid::Random(rng);
  EXPECT_EQ(node->Put(bogus, "k", "v").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(node->Get(bogus, "k").status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(node->CommitTransaction(bogus).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(AftNodeTest, CommitIsIdempotentForRetries) {
  auto node = MakeNode("n0");
  auto txid = node->StartTransaction();
  ASSERT_TRUE(node->Put(*txid, "k", "v").ok());
  auto first = node->CommitTransaction(*txid);
  ASSERT_TRUE(first.ok());
  // A client-side retry of the commit returns the SAME commit ID and does
  // not persist anything twice.
  const uint64_t puts_before = storage_.counters().api_calls.load();
  auto second = node->CommitTransaction(*txid);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(storage_.counters().api_calls.load(), puts_before);
}

TEST_F(AftNodeTest, CommitTimestampsIncreaseMonotonically) {
  auto node = MakeNode("n0");
  TxnId last;
  for (int i = 0; i < 10; ++i) {
    const TxnId id = CommitSimple(*node, {{"k", std::to_string(i)}});
    EXPECT_GT(id, last);
    last = id;
  }
}

TEST_F(AftNodeTest, RepeatableReadAcrossInterleavedCommit) {
  auto node = MakeNode("n0");
  CommitSimple(*node, {{"k", "old"}});
  auto txid = node->StartTransaction();
  ASSERT_TRUE(txid.ok());
  EXPECT_EQ(node->Get(*txid, "k")->value(), "old");
  // Another transaction commits a newer version mid-flight.
  CommitSimple(*node, {{"k", "new"}});
  EXPECT_EQ(node->Get(*txid, "k")->value(), "old") << "repeatable read violated";
  // But a FRESH transaction sees the new version.
  EXPECT_EQ(ReadOnce(*node, "k").value(), "new");
}

TEST_F(AftNodeTest, FracturedReadsArePrevented) {
  auto node = MakeNode("n0");
  CommitSimple(*node, {{"l", "l1"}});                    // T1: {l}
  CommitSimple(*node, {{"k", "k2"}, {"l", "l2"}});       // T2: {k, l}
  auto txid = node->StartTransaction();
  EXPECT_EQ(node->Get(*txid, "k")->value(), "k2");
  EXPECT_EQ(node->Get(*txid, "l")->value(), "l2") << "must not read l1 after k2";
}

TEST_F(AftNodeTest, ReadOnlyTransactionCommits) {
  auto node = MakeNode("n0");
  CommitSimple(*node, {{"k", "v"}});
  auto txid = node->StartTransaction();
  EXPECT_TRUE(node->Get(*txid, "k").ok());
  EXPECT_TRUE(node->CommitTransaction(*txid).ok());
}

TEST_F(AftNodeTest, AdoptTransactionAllowsContinuation) {
  auto node = MakeNode("n0");
  auto txid = node->StartTransaction();
  ASSERT_TRUE(node->Put(*txid, "a", "1").ok());
  // A retried function re-adopts the same ID and continues.
  ASSERT_TRUE(node->AdoptTransaction(*txid).ok());
  ASSERT_TRUE(node->Put(*txid, "b", "2").ok());
  ASSERT_TRUE(node->CommitTransaction(*txid).ok());
  EXPECT_EQ(ReadOnce(*node, "a").value(), "1");
  EXPECT_EQ(ReadOnce(*node, "b").value(), "2");
}

// ---- Write-ordering protocol / crash injection --------------------------------------

TEST_F(AftNodeTest, CrashAfterDataWriteLeavesNoVisibleState) {
  AftNodeOptions options;
  bool crash_armed = true;
  options.crash_hook = [&crash_armed](CrashPoint point) {
    return crash_armed && point == CrashPoint::kAfterDataWrite;
  };
  auto node = MakeNode("crashy", options);
  auto txid = node->StartTransaction();
  ASSERT_TRUE(node->Put(*txid, "k", "half-done").ok());
  EXPECT_TRUE(node->CommitTransaction(*txid).status().IsUnavailable());
  EXPECT_FALSE(node->alive());

  // The data version IS in storage (orphaned)...
  crash_armed = false;
  auto keys = storage_.List(kVersionPrefix);
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 1u);
  // ...but no commit record exists, so a recovering node sees nothing.
  auto recovered = MakeNode("recovered");
  EXPECT_FALSE(ReadOnce(*recovered, "k").has_value());
}

TEST_F(AftNodeTest, CrashAfterCommitWriteIsDurable) {
  AftNodeOptions options;
  bool crash_armed = true;
  options.crash_hook = [&crash_armed](CrashPoint point) {
    return crash_armed && point == CrashPoint::kAfterCommitWrite;
  };
  auto node = MakeNode("crashy", options);
  auto txid = node->StartTransaction();
  ASSERT_TRUE(node->Put(*txid, "k", "durable").ok());
  // The node dies before acknowledging, but the commit record IS persisted:
  // the transaction is committed (§3.3.1 — the client's retry would find it).
  EXPECT_TRUE(node->CommitTransaction(*txid).status().IsUnavailable());

  crash_armed = false;
  auto recovered = MakeNode("recovered");
  EXPECT_EQ(ReadOnce(*recovered, "k").value(), "durable");
}

TEST_F(AftNodeTest, DeadNodeRefusesAllOperations) {
  auto node = MakeNode("n0");
  auto txid = node->StartTransaction();
  node->Kill();
  EXPECT_TRUE(node->Put(*txid, "k", "v").IsUnavailable());
  EXPECT_TRUE(node->StartTransaction().status().IsUnavailable());
  EXPECT_TRUE(node->CommitTransaction(*txid).status().IsUnavailable());
}

// ---- Bootstrap -------------------------------------------------------------------

TEST_F(AftNodeTest, BootstrapWarmsMetadataFromCommitSet) {
  auto node = MakeNode("n0");
  CommitSimple(*node, {{"a", "1"}, {"b", "2"}});
  CommitSimple(*node, {{"a", "3"}});

  // A brand-new node (fresh caches) bootstraps from storage and serves the
  // latest committed state.
  auto fresh = MakeNode("n1");
  EXPECT_EQ(ReadOnce(*fresh, "a").value(), "3");
  EXPECT_EQ(ReadOnce(*fresh, "b").value(), "2");
  EXPECT_EQ(fresh->CommitSetSize(), 2u);
}

TEST_F(AftNodeTest, BootstrapHonorsCommitLimit) {
  auto node = MakeNode("n0");
  for (int i = 0; i < 10; ++i) {
    CommitSimple(*node, {{"k" + std::to_string(i), "v"}});
  }
  AftNodeOptions options;
  options.bootstrap_commit_limit = 3;
  auto fresh = MakeNode("n1", options);
  // Only the newest 3 records were loaded.
  EXPECT_EQ(fresh->CommitSetSize(), 3u);
  EXPECT_EQ(ReadOnce(*fresh, "k9").value(), "v");
  EXPECT_FALSE(ReadOnce(*fresh, "k0").has_value());
}

// ---- Multicast hooks ----------------------------------------------------------------

TEST_F(AftNodeTest, RemoteCommitsBecomeVisible) {
  auto n0 = MakeNode("n0");
  auto n1 = MakeNode("n1");
  CommitSimple(*n0, {{"k", "from-n0"}});

  std::vector<CommitRecordPtr> pruned;
  std::vector<CommitRecordPtr> unpruned;
  n0->DrainRecentCommits(&pruned, &unpruned);
  ASSERT_EQ(unpruned.size(), 1u);
  ASSERT_EQ(pruned.size(), 1u);

  EXPECT_FALSE(ReadOnce(*n1, "k").has_value());  // Not yet known to n1.
  n1->ApplyRemoteCommits(pruned);
  EXPECT_EQ(ReadOnce(*n1, "k").value(), "from-n0");
}

TEST_F(AftNodeTest, DrainPrunesSupersededCommits) {
  auto node = MakeNode("n0");
  CommitSimple(*node, {{"k", "old"}});
  CommitSimple(*node, {{"k", "new"}});
  std::vector<CommitRecordPtr> pruned;
  std::vector<CommitRecordPtr> unpruned;
  node->DrainRecentCommits(&pruned, &unpruned);
  EXPECT_EQ(unpruned.size(), 2u);
  ASSERT_EQ(pruned.size(), 1u) << "the superseded first commit must be pruned";
  EXPECT_EQ(pruned[0]->write_set, std::vector<std::string>{"k"});
}

TEST_F(AftNodeTest, SupersededRemoteCommitsAreNotMerged) {
  auto n0 = MakeNode("n0");
  auto n1 = MakeNode("n1");
  // n1 already has a NEWER version of k.
  const TxnId newer = CommitSimple(*n1, {{"k", "new"}});
  // An older remote record arrives late.
  Rng rng(3);
  auto stale = std::make_shared<const CommitRecord>(
      CommitRecord{TxnId(newer.timestamp - 1000, Uuid::Random(rng)), {"k"}});
  n1->ApplyRemoteCommits({stale});
  EXPECT_EQ(n1->stats().remote_commits_skipped_superseded.load(), 1u);
  EXPECT_FALSE(n1->CommitSetSize() > 2u);
}

TEST_F(AftNodeTest, DrainIsEmptyAfterDrain) {
  auto node = MakeNode("n0");
  CommitSimple(*node, {{"k", "v"}});
  std::vector<CommitRecordPtr> unpruned;
  node->DrainRecentCommits(nullptr, &unpruned);
  EXPECT_EQ(unpruned.size(), 1u);
  unpruned.clear();
  node->DrainRecentCommits(nullptr, &unpruned);
  EXPECT_TRUE(unpruned.empty());
}

// ---- Local GC -------------------------------------------------------------------

TEST_F(AftNodeTest, LocalGcRemovesSupersededMetadata) {
  auto node = MakeNode("n0");
  const TxnId old_id = CommitSimple(*node, {{"k", "old"}});
  CommitSimple(*node, {{"k", "new"}});
  // Drain the broadcast queue first (GC will not touch pending records).
  node->DrainRecentCommits(nullptr, nullptr);
  const size_t before = node->CommitSetSize();
  const size_t removed = node->RunLocalGcOnce();
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(node->CommitSetSize(), before - 1);
  EXPECT_TRUE(node->HasLocallyDeleted(old_id));
  // The survivor still serves reads.
  EXPECT_EQ(ReadOnce(*node, "k").value(), "new");
}

TEST_F(AftNodeTest, LocalGcSparesPendingBroadcast) {
  auto node = MakeNode("n0");
  CommitSimple(*node, {{"k", "old"}});
  CommitSimple(*node, {{"k", "new"}});
  // Nothing drained yet: both records are pending broadcast.
  EXPECT_EQ(node->RunLocalGcOnce(), 0u);
}

TEST_F(AftNodeTest, LocalGcSparesRecordsReadByRunningTxns) {
  auto node = MakeNode("n0");
  CommitSimple(*node, {{"k", "old"}});
  // A running transaction reads the old version...
  auto reader = node->StartTransaction();
  ASSERT_TRUE(node->Get(*reader, "k").ok());
  // ...then a newer version supersedes it.
  CommitSimple(*node, {{"k", "new"}});
  node->DrainRecentCommits(nullptr, nullptr);
  EXPECT_EQ(node->RunLocalGcOnce(), 0u) << "record pinned by a running reader";
  // Once the reader finishes, GC may proceed.
  ASSERT_TRUE(node->AbortTransaction(*reader).ok());
  EXPECT_EQ(node->RunLocalGcOnce(), 1u);
}

TEST_F(AftNodeTest, GcPreservesRepeatableReadsViaPinnedRecords) {
  auto node = MakeNode("n0");
  CommitSimple(*node, {{"k", "old"}});
  auto reader = node->StartTransaction();
  EXPECT_EQ(node->Get(*reader, "k")->value(), "old");
  CommitSimple(*node, {{"k", "new"}});
  node->DrainRecentCommits(nullptr, nullptr);
  (void)node->RunLocalGcOnce();
  // Even if GC ran, the reader's pinned metadata keeps its view consistent.
  auto again = node->Get(*reader, "k");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->value(), "old");
}

// ---- Timeouts ----------------------------------------------------------------------

TEST_F(AftNodeTest, StaleTransactionsAreSweptAfterTimeout) {
  AftNodeOptions options;
  options.txn_timeout = Millis(100);
  auto node = MakeNode("n0", options);
  auto txid = node->StartTransaction();
  ASSERT_TRUE(node->Put(*txid, "k", "v").ok());
  clock_.Advance(Millis(200));
  EXPECT_EQ(node->SweepTimedOutTransactions(), 1u);
  EXPECT_FALSE(node->Put(*txid, "k", "v2").ok());
  EXPECT_FALSE(ReadOnce(*node, "k").has_value());
}

// ---- Write buffer spill ---------------------------------------------------------------

TEST_F(AftNodeTest, SaturatedBufferSpillsInvisibly) {
  AftNodeOptions options;
  options.spill_threshold_bytes = 64;  // Tiny: force spills.
  auto node = MakeNode("n0", options);
  auto txid = node->StartTransaction();
  ASSERT_TRUE(node->Put(*txid, "big1", std::string(100, 'x')).ok());
  ASSERT_TRUE(node->Put(*txid, "big2", std::string(100, 'y')).ok());
  EXPECT_GE(node->stats().spills.load(), 1u);
  // Spilled data sits in storage but is invisible (no commit record).
  EXPECT_FALSE(ReadOnce(*node, "big1").has_value());
  // Read-your-writes still works on spilled keys.
  EXPECT_EQ(node->Get(*txid, "big1")->value(), std::string(100, 'x'));
  // Commit makes everything visible.
  ASSERT_TRUE(node->CommitTransaction(*txid).ok());
  EXPECT_EQ(ReadOnce(*node, "big1").value(), std::string(100, 'x'));
  EXPECT_EQ(ReadOnce(*node, "big2").value(), std::string(100, 'y'));
}

TEST_F(AftNodeTest, AbortCleansUpSpilledData) {
  AftNodeOptions options;
  options.spill_threshold_bytes = 64;
  auto node = MakeNode("n0", options);
  auto txid = node->StartTransaction();
  ASSERT_TRUE(node->Put(*txid, "big", std::string(100, 'x')).ok());
  ASSERT_TRUE(node->AbortTransaction(*txid).ok());
  auto versions = storage_.List(kVersionPrefix);
  ASSERT_TRUE(versions.ok());
  EXPECT_TRUE(versions->empty()) << "spilled orphans must be deleted on abort";
}

TEST_F(AftNodeTest, RewriteAfterSpillCommitsLatestValue) {
  AftNodeOptions options;
  options.spill_threshold_bytes = 64;
  auto node = MakeNode("n0", options);
  auto txid = node->StartTransaction();
  ASSERT_TRUE(node->Put(*txid, "k", std::string(100, 'a')).ok());  // Spills.
  ASSERT_TRUE(node->Put(*txid, "k", "final").ok());                // Dirty again.
  ASSERT_TRUE(node->CommitTransaction(*txid).ok());
  EXPECT_EQ(ReadOnce(*node, "k").value(), "final");
}

// ---- Data cache ------------------------------------------------------------------------

TEST_F(AftNodeTest, DataCacheServesRepeatedReads) {
  auto node = MakeNode("n0");
  CommitSimple(*node, {{"k", "cached"}});
  const uint64_t gets_before = storage_.counters().gets.load();
  // The commit itself warmed the cache; reads should not touch storage.
  EXPECT_EQ(ReadOnce(*node, "k").value(), "cached");
  EXPECT_EQ(ReadOnce(*node, "k").value(), "cached");
  EXPECT_EQ(storage_.counters().gets.load(), gets_before);
  EXPECT_GT(node->data_cache().hits(), 0u);
}

TEST_F(AftNodeTest, CachingDisabledFallsBackToStorage) {
  AftNodeOptions options;
  options.data_cache_bytes = 0;
  auto node = MakeNode("n0", options);
  CommitSimple(*node, {{"k", "uncached"}});
  const uint64_t gets_before = storage_.counters().gets.load();
  EXPECT_EQ(ReadOnce(*node, "k").value(), "uncached");
  EXPECT_GT(storage_.counters().gets.load(), gets_before);
}

}  // namespace
}  // namespace aft
