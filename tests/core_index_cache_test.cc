// Unit tests for the key version index, commit set cache and data cache.

#include <gtest/gtest.h>

#include <thread>

#include "src/common/rng.h"
#include "src/core/commit_set_cache.h"
#include "src/core/data_cache.h"
#include "src/core/key_version_index.h"

namespace aft {
namespace {

TxnId MakeId(int64_t ts) {
  static Rng rng(101);
  return TxnId(ts, Uuid::Random(rng));
}

CommitRecordPtr MakeRecord(int64_t ts, std::vector<std::string> keys) {
  return std::make_shared<const CommitRecord>(CommitRecord{MakeId(ts), std::move(keys)});
}

// ---- KeyVersionIndex ----------------------------------------------------------

TEST(KeyVersionIndexTest, LatestVersionTracksNewest) {
  KeyVersionIndex index;
  EXPECT_TRUE(index.LatestVersion("k").IsNull());
  auto r1 = MakeRecord(10, {"k"});
  auto r2 = MakeRecord(20, {"k", "l"});
  index.AddCommit(*r1);
  index.AddCommit(*r2);
  EXPECT_EQ(index.LatestVersion("k"), r2->id);
  EXPECT_EQ(index.LatestVersion("l"), r2->id);
}

TEST(KeyVersionIndexTest, CandidatesNewestFirstRespectingLowerBound) {
  KeyVersionIndex index;
  auto r1 = MakeRecord(10, {"k"});
  auto r2 = MakeRecord(20, {"k"});
  auto r3 = MakeRecord(30, {"k"});
  index.AddCommit(*r1);
  index.AddCommit(*r2);
  index.AddCommit(*r3);

  auto all = index.CandidatesAtLeast("k", TxnId::Null());
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], r3->id);
  EXPECT_EQ(all[2], r1->id);

  auto bounded = index.CandidatesAtLeast("k", r2->id);
  ASSERT_EQ(bounded.size(), 2u);
  EXPECT_EQ(bounded[0], r3->id);
  EXPECT_EQ(bounded[1], r2->id);
}

TEST(KeyVersionIndexTest, RemoveCommitDropsVersions) {
  KeyVersionIndex index;
  auto r1 = MakeRecord(10, {"k", "l"});
  auto r2 = MakeRecord(20, {"k"});
  index.AddCommit(*r1);
  index.AddCommit(*r2);
  index.RemoveCommit(*r1);
  EXPECT_EQ(index.LatestVersion("k"), r2->id);
  EXPECT_TRUE(index.LatestVersion("l").IsNull());
  EXPECT_FALSE(index.Contains("k", r1->id));
  EXPECT_TRUE(index.Contains("k", r2->id));
}

TEST(KeyVersionIndexTest, CountsAreAccurate) {
  KeyVersionIndex index;
  index.AddCommit(*MakeRecord(10, {"a", "b"}));
  index.AddCommit(*MakeRecord(20, {"b", "c"}));
  EXPECT_EQ(index.KeyCount(), 3u);
  EXPECT_EQ(index.TotalVersionCount(), 4u);
}

TEST(KeyVersionIndexTest, ConcurrentReadersAndWriters) {
  KeyVersionIndex index;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (int i = 1; i <= 500; ++i) {
      index.AddCommit(*MakeRecord(i, {"hot"}));
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      (void)index.LatestVersion("hot");
      (void)index.CandidatesAtLeast("hot", TxnId::Null());
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(index.TotalVersionCount(), 500u);
}

// ---- CommitSetCache --------------------------------------------------------------

TEST(CommitSetCacheTest, AddLookupRemove) {
  CommitSetCache cache;
  auto record = MakeRecord(10, {"k"});
  EXPECT_TRUE(cache.Add(record));
  EXPECT_FALSE(cache.Add(record));  // Duplicate.
  EXPECT_TRUE(cache.Contains(record->id));
  EXPECT_EQ(cache.Lookup(record->id), record);
  cache.Remove(record->id);
  EXPECT_FALSE(cache.Contains(record->id));
  EXPECT_EQ(cache.Lookup(record->id), nullptr);
}

TEST(CommitSetCacheTest, RemoveRemembersLocallyDeleted) {
  CommitSetCache cache;
  auto record = MakeRecord(10, {"k"});
  cache.Add(record);
  EXPECT_FALSE(cache.HasLocallyDeleted(record->id));
  cache.Remove(record->id);
  EXPECT_TRUE(cache.HasLocallyDeleted(record->id));
  cache.ForgetLocallyDeleted(record->id);
  EXPECT_FALSE(cache.HasLocallyDeleted(record->id));
}

TEST(CommitSetCacheTest, RemovingUnknownIdIsNotADeletion) {
  CommitSetCache cache;
  const TxnId id = MakeId(99);
  cache.Remove(id);
  EXPECT_FALSE(cache.HasLocallyDeleted(id));
}

TEST(CommitSetCacheTest, RecentCommitsDrainOnce) {
  CommitSetCache cache;
  auto r1 = MakeRecord(10, {"a"});
  auto r2 = MakeRecord(20, {"b"});
  cache.Add(r1);
  cache.Add(r2);
  cache.NoteLocalCommit(r1->id);
  cache.NoteLocalCommit(r2->id);
  auto drained = cache.TakeRecentCommits();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_TRUE(cache.TakeRecentCommits().empty());
}

TEST(CommitSetCacheTest, SnapshotReflectsContents) {
  CommitSetCache cache;
  cache.Add(MakeRecord(10, {"a"}));
  cache.Add(MakeRecord(20, {"b"}));
  EXPECT_EQ(cache.Snapshot().size(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(CommitSetCacheTest, PinnedRecordSurvivesRemoval) {
  CommitSetCache cache;
  auto record = MakeRecord(10, {"k"});
  cache.Add(record);
  CommitRecordPtr pinned = cache.Lookup(record->id);
  cache.Remove(record->id);
  // A running transaction holding the pointer can still read the metadata.
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->write_set, std::vector<std::string>{"k"});
}

// ---- DataCache --------------------------------------------------------------------

TEST(DataCacheTest, DisabledCacheStoresNothing) {
  DataCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Put("k", "payload");
  EXPECT_FALSE(cache.Get("k").has_value());
}

TEST(DataCacheTest, PutGetErase) {
  DataCache cache(1 << 20);
  cache.Put("k", "payload");
  EXPECT_EQ(cache.Get("k").value(), "payload");
  cache.Erase("k");
  EXPECT_FALSE(cache.Get("k").has_value());
}

TEST(DataCacheTest, HitAndMissCountersWork) {
  DataCache cache(1 << 20);
  cache.Put("k", "v");
  (void)cache.Get("k");
  (void)cache.Get("missing");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(DataCacheTest, EvictsLruWhenOverBudget) {
  DataCache cache(10);  // Tiny: holds at most 2 x 5-byte entries.
  cache.Put("a", "11111");
  cache.Put("b", "22222");
  (void)cache.Get("a");   // Touch a: b becomes LRU.
  cache.Put("c", "33333");  // Evicts b.
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_LE(cache.size_bytes(), 10u);
}

TEST(DataCacheTest, OversizedEntryIsRejected) {
  DataCache cache(4);
  cache.Put("k", "too large for the cache");
  EXPECT_FALSE(cache.Get("k").has_value());
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST(DataCacheTest, OverwriteUpdatesBytes) {
  DataCache cache(100);
  cache.Put("k", "aaaa");
  cache.Put("k", "bb");
  EXPECT_EQ(cache.Get("k").value(), "bb");
  EXPECT_EQ(cache.size_bytes(), 2u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(DataCacheTest, ConcurrentAccessIsSafe) {
  DataCache cache(1 << 16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) {
        const std::string key = "k" + std::to_string((t * 1000 + i) % 64);
        cache.Put(key, std::string(32, 'x'));
        (void)cache.Get(key);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_LE(cache.size_bytes(), 1u << 16);
}

}  // namespace
}  // namespace aft
