// Unit tests for Algorithm 1 (AtomicRead) and Algorithm 2 (supersedence),
// including the paper's worked examples from §3.2 and §5.2.1.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/read_algorithm.h"

namespace aft {
namespace {

class ReadAlgorithmTest : public ::testing::Test {
 protected:
  TxnId Commit(int64_t ts, std::vector<std::string> keys) {
    auto record = std::make_shared<const CommitRecord>(
        CommitRecord{TxnId(ts, Uuid::Random(rng_)), std::move(keys)});
    commits_.Add(record);
    index_.AddCommit(*record);
    return record->id;
  }

  // Runs Algorithm 1 and, on success, folds the choice into the read set.
  AtomicReadChoice Read(const std::string& key) {
    AtomicReadChoice choice = SelectAtomicReadVersion(key, read_set_, index_, commits_);
    if (choice.kind == AtomicReadChoice::Kind::kVersion) {
      read_set_[key] = ReadSetEntry{choice.version, choice.record};
    }
    return choice;
  }

  Rng rng_{42};
  KeyVersionIndex index_;
  CommitSetCache commits_;
  std::unordered_map<std::string, ReadSetEntry> read_set_;
};

TEST_F(ReadAlgorithmTest, UnknownKeyReadsNullVersion) {
  const AtomicReadChoice choice = Read("nope");
  EXPECT_EQ(choice.kind, AtomicReadChoice::Kind::kNullVersion);
}

TEST_F(ReadAlgorithmTest, ReadsNewestCommittedVersion) {
  Commit(10, {"k"});
  const TxnId newest = Commit(20, {"k"});
  const AtomicReadChoice choice = Read("k");
  ASSERT_EQ(choice.kind, AtomicReadChoice::Kind::kVersion);
  EXPECT_EQ(choice.version, newest);
}

// The §3.2 example: T1:{l1}, T2:{k2,l2}. After reading k2, a read of l must
// return l2 (or newer), never l1.
TEST_F(ReadAlgorithmTest, PaperSection32Example) {
  Commit(10, {"l"});                       // T1
  const TxnId t2 = Commit(20, {"k", "l"});  // T2

  const AtomicReadChoice k_choice = Read("k");
  ASSERT_EQ(k_choice.kind, AtomicReadChoice::Kind::kVersion);
  EXPECT_EQ(k_choice.version, t2);

  const AtomicReadChoice l_choice = Read("l");
  ASSERT_EQ(l_choice.kind, AtomicReadChoice::Kind::kVersion);
  EXPECT_EQ(l_choice.version, t2) << "must not read l1 < l2 (fractured read)";
}

// Restriction (2) of Theorem 1: after reading an OLD l, a newer k cowritten
// with a newer l is invalid; we fall back to an older compatible k.
TEST_F(ReadAlgorithmTest, OldReadForcesStaleCompatibleVersion) {
  const TxnId t1 = Commit(10, {"l"});
  const TxnId t2 = Commit(20, {"k"});       // Independent old k.
  const TxnId t3 = Commit(30, {"k", "l"});  // Newer cowrite of both.

  // Force-read l at t1 (simulating a read that happened before t3 existed).
  auto t1_record = commits_.Lookup(t1);
  read_set_["l"] = ReadSetEntry{t1, t1_record};

  const AtomicReadChoice choice = Read("k");
  ASSERT_EQ(choice.kind, AtomicReadChoice::Kind::kVersion);
  EXPECT_EQ(choice.version, t2) << "k@t3 conflicts with l@t1; must fall back to k@t2";
  (void)t3;
}

// §3.6 extreme case: if the only version of k conflicts and a lower bound
// exists... but with no lower bound, reading NULL is a consistent snapshot.
TEST_F(ReadAlgorithmTest, AllVersionsConflictWithNoLowerBoundReadsNull) {
  const TxnId t1 = Commit(10, {"l"});
  Commit(30, {"k", "l"});  // The ONLY version of k, cowritten with newer l.

  read_set_["l"] = ReadSetEntry{t1, commits_.Lookup(t1)};
  const AtomicReadChoice choice = Read("k");
  EXPECT_EQ(choice.kind, AtomicReadChoice::Kind::kNullVersion);
}

// §5.2.1 worked example: Ta:{ka}, Tb:{lb}, Tc:{kc,lc}, a<b<c. Tr reads ka.
// If Tb is garbage collected, the read of l finds no valid version (lc is
// invalid because it was cowritten with kc > ka... actually lc conflicts via
// the cowrite constraint) and must abort.
TEST_F(ReadAlgorithmTest, PaperSection521MissingVersionForcesAbort) {
  const TxnId ta = Commit(10, {"k"});
  const TxnId tb = Commit(20, {"l"});
  Commit(30, {"k", "l"});  // Tc.

  // Tr reads ka (the algorithm would prefer kc, so pin it explicitly: Tr
  // read k before Tc committed).
  read_set_["k"] = ReadSetEntry{ta, commits_.Lookup(ta)};

  // GC deletes Tb.
  auto tb_record = commits_.Lookup(tb);
  index_.RemoveCommit(*tb_record);
  commits_.Remove(tb);

  // Reading l: lc is invalid (cowritten with kc, but we read ka < kc).
  // lb is gone. No lower bound on l exists, so NULL is still consistent.
  const AtomicReadChoice choice = Read("l");
  EXPECT_EQ(choice.kind, AtomicReadChoice::Kind::kNullVersion);
}

// A true forced abort: the read set REQUIRES a version of k (lower bound set
// by a cowrite) but every candidate has been GC'd.
TEST_F(ReadAlgorithmTest, LowerBoundWithNoCandidatesAborts) {
  const TxnId t2 = Commit(20, {"k", "l"});
  read_set_["l"] = ReadSetEntry{t2, commits_.Lookup(t2)};

  // GC drops T2's index entries for k (simulate: remove and re-add only l).
  auto t2_record = commits_.Lookup(t2);
  index_.RemoveCommit(*t2_record);
  commits_.Remove(t2);

  const AtomicReadChoice choice =
      SelectAtomicReadVersion("k", read_set_, index_, commits_);
  EXPECT_EQ(choice.kind, AtomicReadChoice::Kind::kNoValidVersion);
}

// Repeatable read (Corollary 1.1): re-reading a key returns the same version
// even after newer versions commit.
TEST_F(ReadAlgorithmTest, RepeatableRead) {
  const TxnId t1 = Commit(10, {"k"});
  const AtomicReadChoice first = Read("k");
  ASSERT_EQ(first.version, t1);

  Commit(20, {"k"});  // A newer version lands mid-transaction.
  const AtomicReadChoice second = Read("k");
  ASSERT_EQ(second.kind, AtomicReadChoice::Kind::kVersion);
  EXPECT_EQ(second.version, t1) << "repeatable read violated";
}

// A newer version NOT cowritten with anything we read IS eligible for keys
// we have not read yet (reads see fresh data when allowed).
TEST_F(ReadAlgorithmTest, IndependentKeysReadFreshest) {
  Commit(10, {"a"});
  const TxnId newest_b = Commit(50, {"b"});
  (void)Read("a");
  const AtomicReadChoice choice = Read("b");
  EXPECT_EQ(choice.version, newest_b);
}

// Lower bound from cowrite forces skipping older versions entirely.
TEST_F(ReadAlgorithmTest, LowerBoundSkipsOlderVersions) {
  Commit(10, {"k"});
  const TxnId t2 = Commit(20, {"k", "l"});
  read_set_["l"] = ReadSetEntry{t2, commits_.Lookup(t2)};
  const AtomicReadChoice choice = Read("k");
  ASSERT_EQ(choice.kind, AtomicReadChoice::Kind::kVersion);
  EXPECT_EQ(choice.version, t2);
}

// Property sweep: random histories — every read set built through the
// algorithm satisfies Definition 1.
class ReadAlgorithmPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ReadAlgorithmPropertyTest, ReadSetsAreAlwaysAtomic) {
  Rng rng(1000 + GetParam());
  KeyVersionIndex index;
  CommitSetCache commits;
  const std::vector<std::string> keys{"a", "b", "c", "d", "e"};

  // Generate a random committed history.
  std::vector<CommitRecordPtr> records;
  for (int i = 1; i <= 60; ++i) {
    std::vector<std::string> write_set;
    for (const auto& key : keys) {
      if (rng.Bernoulli(0.4)) {
        write_set.push_back(key);
      }
    }
    if (write_set.empty()) {
      write_set.push_back(keys[rng.Below(keys.size())]);
    }
    auto record = std::make_shared<const CommitRecord>(
        CommitRecord{TxnId(i * 10, Uuid::Random(rng)), std::move(write_set)});
    commits.Add(record);
    index.AddCommit(*record);
    records.push_back(record);
  }

  // Run many random read-only transactions and check Definition 1.
  for (int txn = 0; txn < 50; ++txn) {
    std::unordered_map<std::string, ReadSetEntry> read_set;
    for (int op = 0; op < 8; ++op) {
      const std::string& key = keys[rng.Below(keys.size())];
      AtomicReadChoice choice = SelectAtomicReadVersion(key, read_set, index, commits);
      ASSERT_NE(choice.kind, AtomicReadChoice::Kind::kNoValidVersion)
          << "no GC ran; a valid version must always exist";
      if (choice.kind == AtomicReadChoice::Kind::kVersion) {
        read_set[key] = ReadSetEntry{choice.version, choice.record};
      }
      // Definition 1: forall ki in R, forall li in ki.cowritten with lj in R:
      // j >= i.
      for (const auto& [read_key, entry] : read_set) {
        for (const std::string& cokey : entry.record->write_set) {
          auto it = read_set.find(cokey);
          if (it != read_set.end()) {
            EXPECT_GE(it->second.version, entry.version)
                << "fractured read set: " << read_key << " vs " << cokey;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReadAlgorithmPropertyTest, ::testing::Range(0, 8));

// ---- Algorithm 2 -----------------------------------------------------------------

TEST(SupersedenceTest, NotSupersededWhenLatestForAnyKey) {
  Rng rng(7);
  KeyVersionIndex index;
  CommitRecord r1{TxnId(10, Uuid::Random(rng)), {"k", "l"}};
  index.AddCommit(r1);
  EXPECT_FALSE(IsTransactionSuperseded(r1, index));

  CommitRecord r2{TxnId(20, Uuid::Random(rng)), {"k"}};
  index.AddCommit(r2);
  // l still has no newer version.
  EXPECT_FALSE(IsTransactionSuperseded(r1, index));

  CommitRecord r3{TxnId(30, Uuid::Random(rng)), {"l"}};
  index.AddCommit(r3);
  EXPECT_TRUE(IsTransactionSuperseded(r1, index));
  EXPECT_FALSE(IsTransactionSuperseded(r3, index));
}

TEST(SupersedenceTest, EmptyWriteSetIsVacuouslySuperseded) {
  KeyVersionIndex index;
  Rng rng(11);
  CommitRecord read_only{TxnId(10, Uuid::Random(rng)), {}};
  EXPECT_TRUE(IsTransactionSuperseded(read_only, index));
}

TEST(SupersedenceTest, UnmergedRemoteRecordNewerThanLocalIsNotSuperseded) {
  // The generalized form: a record NEWER than everything local must not be
  // treated as superseded (the paper's latest==i formulation assumes the
  // record was already merged).
  Rng rng(13);
  KeyVersionIndex index;
  CommitRecord local{TxnId(10, Uuid::Random(rng)), {"k"}};
  index.AddCommit(local);
  CommitRecord remote{TxnId(99, Uuid::Random(rng)), {"k"}};
  EXPECT_FALSE(IsTransactionSuperseded(remote, index));
}

}  // namespace
}  // namespace aft
