// Unit tests for the simulated storage engines.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/core/aft_node.h"
#include "src/core/records.h"
#include "src/storage/local_engine.h"
#include "src/storage/sim_dynamo.h"
#include "src/storage/sim_engine_base.h"
#include "src/storage/sim_redis.h"
#include "src/storage/sim_s3.h"
#include "src/storage/versioned_map.h"

namespace aft {
namespace {

// Zero-latency profiles keep protocol tests instantaneous.
EngineLatencyProfile ZeroProfile() {
  return EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(), LatencyModel::Zero(),
                              LatencyModel::Zero(), LatencyModel::Zero(), LatencyModel::Zero()};
}

SimDynamoOptions FastDynamo() {
  SimDynamoOptions options;
  options.profile = ZeroProfile();
  options.staleness = StalenessModel{};
  options.txn_call = LatencyModel::Zero();
  return options;
}

SimS3Options FastS3() {
  SimS3Options options;
  options.profile = ZeroProfile();
  options.staleness = StalenessModel{};
  return options;
}

SimRedisOptions FastRedis() {
  SimRedisOptions options;
  options.profile = ZeroProfile();
  return options;
}

// ---- VersionedMap ----------------------------------------------------------------

TEST(VersionedMapTest, PutGetLatest) {
  VersionedMap map;
  map.Put("a", "1", TimePoint(Millis(10)));
  EXPECT_EQ(map.GetLatest("a").value(), "1");
  EXPECT_FALSE(map.GetLatest("b").has_value());
}

TEST(VersionedMapTest, HistoricalReadsObserveOldValues) {
  VersionedMap map;
  map.Put("a", "v1", TimePoint(Millis(10)));
  map.Put("a", "v2", TimePoint(Millis(20)));
  bool stale = false;
  EXPECT_EQ(map.Get("a", TimePoint(Millis(15)), &stale).value(), "v1");
  EXPECT_TRUE(stale);
  EXPECT_EQ(map.Get("a", TimePoint(Millis(25)), &stale).value(), "v2");
  EXPECT_FALSE(stale);
  // Before creation: invisible.
  EXPECT_FALSE(map.Get("a", TimePoint(Millis(5))).has_value());
}

TEST(VersionedMapTest, DeleteWritesTombstone) {
  VersionedMap map;
  map.Put("a", "v1", TimePoint(Millis(10)));
  map.Delete("a", TimePoint(Millis(20)));
  EXPECT_FALSE(map.GetLatest("a").has_value());
  // A sufficiently stale read still sees the pre-delete value.
  EXPECT_EQ(map.Get("a", TimePoint(Millis(15))).value(), "v1");
}

TEST(VersionedMapTest, ListReturnsSortedLiveKeysWithPrefix) {
  VersionedMap map;
  const TimePoint t(Millis(1));
  map.Put("p/b", "1", t);
  map.Put("p/a", "1", t);
  map.Put("q/z", "1", t);
  map.Put("p/c", "1", t);
  map.Delete("p/c", TimePoint(Millis(2)));
  EXPECT_EQ(map.List("p/"), (std::vector<std::string>{"p/a", "p/b"}));
  EXPECT_EQ(map.List(""), (std::vector<std::string>{"p/a", "p/b", "q/z"}));
}

TEST(VersionedMapTest, HistoryDepthIsBounded) {
  VersionedMap map(4, /*history_depth=*/3);
  for (int i = 0; i < 10; ++i) {
    map.Put("a", std::to_string(i), TimePoint(Millis(i)));
  }
  // Entries older than the retained window are gone: a very stale read now
  // observes the oldest retained entry rather than the true historical one.
  EXPECT_EQ(map.GetLatest("a").value(), "9");
  EXPECT_TRUE(map.HasHistory("a"));
}

TEST(VersionedMapTest, FullyTombstonedKeysDisappear) {
  VersionedMap map(4, 1);
  map.Put("a", "1", TimePoint(Millis(1)));
  map.Delete("a", TimePoint(Millis(2)));
  EXPECT_EQ(map.ApproximateKeyCount(), 0u);
}

// ---- Engine basics (parameterized over all three engines) -------------------------

enum class EngineKind { kS3, kDynamo, kRedis, kLocal };

class EngineTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  EngineTest() {
    switch (GetParam()) {
      case EngineKind::kS3:
        engine_ = std::make_unique<SimS3>(clock_, FastS3());
        break;
      case EngineKind::kDynamo:
        engine_ = std::make_unique<SimDynamo>(clock_, FastDynamo());
        break;
      case EngineKind::kRedis:
        engine_ = std::make_unique<SimRedis>(clock_, FastRedis());
        break;
      case EngineKind::kLocal: {
        char tmpl[] = "/tmp/aft_storage_XXXXXX";
        const char* dir = ::mkdtemp(tmpl);
        EXPECT_NE(dir, nullptr);
        local_dir_ = dir == nullptr ? "" : dir;
        auto engine = LocalEngine::Open(local_dir_);
        EXPECT_TRUE(engine.ok());
        engine_ = std::move(*engine);
        break;
      }
    }
  }

  ~EngineTest() override {
    engine_.reset();
    if (!local_dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(local_dir_, ec);
    }
  }

  SimClock clock_;
  std::unique_ptr<StorageEngine> engine_;
  std::string local_dir_;
};

TEST_P(EngineTest, GetMissingKeyIsNotFound) {
  auto result = engine_->Get("nope");
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_P(EngineTest, PutThenGetRoundTrips) {
  ASSERT_TRUE(engine_->Put("k", "value").ok());
  auto result = engine_->Get("k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, "value");
}

TEST_P(EngineTest, OverwriteReplacesValue) {
  ASSERT_TRUE(engine_->Put("k", "v1").ok());
  ASSERT_TRUE(engine_->Put("k", "v2").ok());
  EXPECT_EQ(*engine_->Get("k"), "v2");
}

TEST_P(EngineTest, DeleteRemovesKeyAndIsIdempotent) {
  ASSERT_TRUE(engine_->Put("k", "v").ok());
  ASSERT_TRUE(engine_->Delete("k").ok());
  EXPECT_TRUE(engine_->Get("k").status().IsNotFound());
  EXPECT_TRUE(engine_->Delete("k").ok());
}

TEST_P(EngineTest, BatchPutWritesAllKeys) {
  std::vector<WriteOp> ops;
  for (int i = 0; i < 60; ++i) {  // More than one DynamoDB batch chunk.
    ops.push_back(WriteOp{"key" + std::to_string(i), "v" + std::to_string(i)});
  }
  ASSERT_TRUE(engine_->BatchPut(ops).ok());
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(*engine_->Get("key" + std::to_string(i)), "v" + std::to_string(i));
  }
}

TEST_P(EngineTest, BatchDeleteRemovesAllKeys) {
  std::vector<WriteOp> ops;
  std::vector<std::string> keys;
  for (int i = 0; i < 30; ++i) {
    ops.push_back(WriteOp{"key" + std::to_string(i), "v"});
    keys.push_back("key" + std::to_string(i));
  }
  ASSERT_TRUE(engine_->BatchPut(ops).ok());
  ASSERT_TRUE(engine_->BatchDelete(keys).ok());
  for (const auto& key : keys) {
    EXPECT_TRUE(engine_->Get(key).status().IsNotFound());
  }
}

TEST_P(EngineTest, ListFiltersByPrefix) {
  ASSERT_TRUE(engine_->Put("a/1", "v").ok());
  ASSERT_TRUE(engine_->Put("a/2", "v").ok());
  ASSERT_TRUE(engine_->Put("b/1", "v").ok());
  auto result = engine_->List("a/");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<std::string>{"a/1", "a/2"}));
}

TEST_P(EngineTest, CountersTrackOperations) {
  (void)engine_->Put("k", "v");
  (void)engine_->Get("k");
  (void)engine_->Get("missing");
  EXPECT_EQ(engine_->counters().puts.load(), 1u);
  EXPECT_EQ(engine_->counters().gets.load(), 2u);
  EXPECT_GT(engine_->counters().bytes_written.load(), 0u);
}

TEST_P(EngineTest, ConcurrentWritersDoNotCorrupt) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string(i % 17);
        (void)engine_->Put(key, "t" + std::to_string(t));
        (void)engine_->Get(key);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // Every key holds a valid value written by some thread.
  for (int i = 0; i < 17; ++i) {
    auto result = engine_->Get("k" + std::to_string(i));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->substr(0, 1), "t");
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineTest,
                         ::testing::Values(EngineKind::kS3, EngineKind::kDynamo,
                                           EngineKind::kRedis, EngineKind::kLocal),
                         [](const ::testing::TestParamInfo<EngineKind>& param_info) {
                           switch (param_info.param) {
                             case EngineKind::kS3:
                               return "S3";
                             case EngineKind::kDynamo:
                               return "Dynamo";
                             case EngineKind::kRedis:
                               return "Redis";
                             case EngineKind::kLocal:
                               return "Local";
                           }
                           return "Unknown";
                         });

// ---- Engine-specific behaviour ------------------------------------------------------

TEST(SimS3Test, HasNoBatchSupport) {
  SimClock clock;
  SimS3 s3(clock, FastS3());
  EXPECT_FALSE(s3.SupportsBatchPut());
  std::vector<WriteOp> ops{{"a", "1"}, {"b", "2"}};
  ASSERT_TRUE(s3.BatchPut(ops).ok());
  // Degraded to two sequential puts — no batch API call was made.
  EXPECT_EQ(s3.counters().puts.load(), 2u);
  EXPECT_EQ(s3.counters().batch_puts.load(), 0u);
}

TEST(SimS3Test, LatencyIsChargedToClock) {
  SimClock clock;
  SimS3Options options;  // Default (non-zero) latency profile.
  SimS3 s3(clock, options);
  const TimePoint before = clock.Now();
  (void)s3.Put("k", "v");
  EXPECT_GT(clock.Now(), before);  // The put slept on the simulated clock.
}

TEST(SimS3Test, StaleReadsHappenOnOverwrittenKeys) {
  SimClock clock;
  SimS3Options options = FastS3();
  options.staleness = StalenessModel{1.0, Millis(8)};  // Every read samples staleness.
  SimS3 s3(clock, options);
  ASSERT_TRUE(s3.Put("k", "v1").ok());
  clock.Advance(Millis(10));
  ASSERT_TRUE(s3.Put("k", "v2").ok());
  clock.Advance(Millis(10));
  // Reads at t=20 with mean-8ms staleness frequently observe the t=0 value.
  int observed_old = 0;
  for (int i = 0; i < 200; ++i) {
    auto result = s3.Get("k");
    if (result.ok() && *result == "v1") {
      ++observed_old;
    }
  }
  EXPECT_GT(observed_old, 0);
  EXPECT_GT(s3.counters().stale_reads.load(), 0u);
}

TEST(SimS3Test, NewKeysAreReadAfterWriteConsistent) {
  SimClock clock;
  SimS3Options options = FastS3();
  options.staleness = StalenessModel{1.0, Millis(1000)};
  SimS3 s3(clock, options);
  // Never-overwritten keys are exempt from staleness (2020 S3 semantics).
  for (int i = 0; i < 50; ++i) {
    const std::string key = "new" + std::to_string(i);
    ASSERT_TRUE(s3.Put(key, "v").ok());
    auto result = s3.Get(key);
    ASSERT_TRUE(result.ok()) << key;
    EXPECT_EQ(*result, "v");
  }
}

TEST(SimDynamoTest, BatchRespectsChunkLimit) {
  SimClock clock;
  SimDynamo dynamo(clock, FastDynamo());
  EXPECT_TRUE(dynamo.SupportsBatchPut());
  EXPECT_EQ(dynamo.MaxBatchSize(), 25u);
  std::vector<WriteOp> ops;
  for (int i = 0; i < 60; ++i) {
    ops.push_back(WriteOp{"k" + std::to_string(i), "v"});
  }
  ASSERT_TRUE(dynamo.BatchPut(ops).ok());
  EXPECT_EQ(dynamo.counters().batch_puts.load(), 3u);  // 25 + 25 + 10.
  EXPECT_EQ(dynamo.counters().puts.load(), 0u);
}

TEST(SimDynamoTest, TransactWriteThenTransactGet) {
  SimClock clock;
  SimDynamo dynamo(clock, FastDynamo());
  std::vector<WriteOp> ops{{"x", "1"}, {"y", "2"}};
  ASSERT_TRUE(dynamo.TransactWrite(ops).ok());
  std::vector<std::string> keys{"x", "y", "z"};
  auto result = dynamo.TransactGet(keys);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->at(0).value(), "1");
  EXPECT_EQ(result->at(1).value(), "2");
  EXPECT_FALSE(result->at(2).has_value());
}

TEST(SimDynamoTest, ConflictingTransactionsAbort) {
  // Use a real clock with non-zero transaction latency so the lock window is
  // wide enough for two threads to collide.
  RealClock clock(1.0);
  SimDynamoOptions options = FastDynamo();
  options.txn_call = LatencyModel(20.0, 0.0, 20.0);
  SimDynamo dynamo(clock, options);
  std::atomic<int> conflicts{0};
  std::atomic<int> successes{0};
  auto worker = [&] {
    std::vector<WriteOp> ops{{"hot", "v"}};
    Status status = dynamo.TransactWrite(ops);
    if (status.IsAborted()) {
      conflicts.fetch_add(1);
    } else if (status.ok()) {
      successes.fetch_add(1);
    }
  };
  std::thread a(worker);
  std::thread b(worker);
  a.join();
  b.join();
  EXPECT_EQ(successes.load() + conflicts.load(), 2);
  EXPECT_GE(successes.load(), 1);
  EXPECT_EQ(dynamo.txn_counters().txn_conflicts.load(),
            static_cast<uint64_t>(conflicts.load()));
}

TEST(SimRedisTest, MSetWithinShardSucceeds) {
  SimClock clock;
  SimRedisOptions options = FastRedis();
  options.num_shards = 2;
  SimRedis redis(clock, options);
  // Find two keys on the same shard.
  std::vector<std::string> same_shard;
  for (int i = 0; same_shard.size() < 2 && i < 100; ++i) {
    std::string key = "k" + std::to_string(i);
    if (redis.ShardOf(key) == 0) {
      same_shard.push_back(key);
    }
  }
  ASSERT_EQ(same_shard.size(), 2u);
  std::vector<WriteOp> ops{{same_shard[0], "a"}, {same_shard[1], "b"}};
  ASSERT_TRUE(redis.MSet(ops).ok());
  EXPECT_EQ(*redis.Get(same_shard[0]), "a");
  EXPECT_EQ(*redis.Get(same_shard[1]), "b");
}

TEST(SimRedisTest, MSetAcrossShardsIsCrossslot) {
  SimClock clock;
  SimRedisOptions options = FastRedis();
  options.num_shards = 2;
  SimRedis redis(clock, options);
  std::string shard0;
  std::string shard1;
  for (int i = 0; (shard0.empty() || shard1.empty()) && i < 100; ++i) {
    std::string key = "k" + std::to_string(i);
    (redis.ShardOf(key) == 0 ? shard0 : shard1) = key;
  }
  std::vector<WriteOp> ops{{shard0, "a"}, {shard1, "b"}};
  EXPECT_EQ(redis.MSet(ops).code(), StatusCode::kInvalidArgument);
}

TEST(SimRedisTest, ReadsAreNeverStale) {
  SimClock clock;
  SimRedis redis(clock, FastRedis());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(redis.Put("k", std::to_string(i)).ok());
    EXPECT_EQ(*redis.Get("k"), std::to_string(i));
  }
  EXPECT_EQ(redis.counters().stale_reads.load(), 0u);
}

// ---- LocalEngine (the durable WAL-backed engine) ------------------------------------

class LocalEngineTest : public ::testing::Test {
 protected:
  LocalEngineTest() {
    char tmpl[] = "/tmp/aft_local_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    dir_ = dir == nullptr ? "" : dir;
    auto engine = LocalEngine::Open(dir_);
    EXPECT_TRUE(engine.ok());
    engine_ = std::move(*engine);
  }
  ~LocalEngineTest() override {
    engine_.reset();
    if (!dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir_, ec);
    }
  }

  std::string dir_;
  std::unique_ptr<LocalEngine> engine_;
};

TEST_F(LocalEngineTest, GetRangeReadsOnlyTheRequestedWindow) {
  std::string value(4096, '\0');
  for (size_t i = 0; i < value.size(); ++i) {
    value[i] = static_cast<char>('a' + i % 26);
  }
  ASSERT_TRUE(engine_->Put("big", value).ok());
  auto window = engine_->GetRange("big", 1000, 64);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(*window, value.substr(1000, 64));
  // The native pread path reads exactly the window, not the whole value.
  const uint64_t before = engine_->counters().bytes_read.load();
  ASSERT_TRUE(engine_->GetRange("big", 0, 16).ok());
  EXPECT_EQ(engine_->counters().bytes_read.load() - before, 16u);
}

TEST_F(LocalEngineTest, MultiGetMixesHitsAndMisses) {
  ASSERT_TRUE(engine_->Put("a", "1").ok());
  ASSERT_TRUE(engine_->Put("c", "3").ok());
  // More keys than the sequential cutover so the IoExecutor path runs too.
  std::vector<std::string> keys;
  for (int i = 0; i < 12; ++i) {
    keys.push_back(i % 3 == 0 ? "a" : (i % 3 == 1 ? "b" : "c"));
  }
  auto results = engine_->MultiGet(keys);
  ASSERT_EQ(results.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    if (keys[i] == "b") {
      EXPECT_TRUE(results[i].status().IsNotFound()) << i;
    } else {
      ASSERT_TRUE(results[i].ok()) << i;
      EXPECT_EQ(*results[i], keys[i] == "a" ? "1" : "3");
    }
  }
}

TEST_F(LocalEngineTest, BatchPutConsumeRoundTrips) {
  std::vector<WriteOp> ops;
  for (int i = 0; i < 32; ++i) {
    ops.push_back(WriteOp{"key" + std::to_string(i), std::string(100, 'a' + i % 26)});
  }
  std::vector<WriteOp> copy = ops;
  ASSERT_TRUE(engine_->BatchPutConsume(copy).ok());
  for (const WriteOp& op : ops) {
    auto value = engine_->Get(op.key);
    ASSERT_TRUE(value.ok()) << op.key;
    EXPECT_EQ(*value, op.value);
  }
}

TEST_F(LocalEngineTest, InjectedFailureFailsOnlyThatOp) {
  engine_->SetWriteFailureInjector([](std::string_view key) {
    return key == "bad" ? Status::Unavailable("injected") : Status::Ok();
  });
  std::vector<WriteOp> ops{{"good1", "v"}, {"bad", "v"}, {"good2", "v"}};
  const Status status = engine_->BatchPut(ops);
  EXPECT_TRUE(status.IsUnavailable());
  // Non-atomic batch semantics (BatchWriteItem): the other ops landed.
  EXPECT_TRUE(engine_->Get("good1").ok());
  EXPECT_TRUE(engine_->Get("good2").ok());
  EXPECT_TRUE(engine_->Get("bad").status().IsNotFound());
  engine_->SetWriteFailureInjector(nullptr);
  EXPECT_TRUE(engine_->Put("bad", "v").ok());
}

// The §3.3 commit barrier over the durable engine, with the failure injected
// BELOW AFT (at the storage write) and the aftermath checked ON DISK: a
// partially flushed transaction must leave no commit record — not in the
// running engine, and not after a crash-equivalent reopen. The versions that
// did land survive recovery as orphans for the fault manager's sweep.
TEST_F(LocalEngineTest, PartialFlushFailureWritesNoCommitRecordEvenAfterReopen) {
  engine_->SetWriteFailureInjector([](std::string_view key) {
    return key.find("/k3/") != std::string_view::npos
               ? Status::Unavailable("injected write failure")
               : Status::Ok();
  });

  RealClock& clock = RealClock::Default();
  const std::vector<std::string> keys = {"k0", "k1", "k2", "k3", "k4", "k5"};
  {
    AftNode node("n0", *engine_, clock);
    ASSERT_TRUE(node.Start().ok());
    auto txid = node.StartTransaction();
    ASSERT_TRUE(txid.ok());
    for (const std::string& key : keys) {
      ASSERT_TRUE(node.Put(*txid, key, "payload-" + key).ok());
    }
    const auto committed = node.CommitTransaction(*txid);
    ASSERT_FALSE(committed.ok());
    EXPECT_TRUE(committed.status().IsUnavailable());

    // Barrier holds in the running engine: no commit record, five orphans.
    auto commit_keys = engine_->List(kCommitPrefix);
    ASSERT_TRUE(commit_keys.ok());
    EXPECT_TRUE(commit_keys->empty());
    auto version_keys = engine_->List(kVersionPrefix);
    ASSERT_TRUE(version_keys.ok());
    EXPECT_EQ(version_keys->size(), keys.size() - 1);

    // No partial reads: a fresh node over the same store sees nothing.
    AftNode fresh("n1", *engine_, clock);
    ASSERT_TRUE(fresh.Start().ok());
    auto reader = fresh.StartTransaction();
    ASSERT_TRUE(reader.ok());
    for (const std::string& key : keys) {
      auto read = fresh.Get(*reader, key);
      ASSERT_TRUE(read.ok()) << key;
      EXPECT_FALSE(read->has_value()) << "partial commit visible at " << key;
    }
  }

  // Crash-equivalent reopen: replay the WAL from disk. The durable state
  // must agree — no commit record ever reached the log.
  engine_.reset();
  auto reopened = LocalEngine::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  auto commit_keys = (*reopened)->List(kCommitPrefix);
  ASSERT_TRUE(commit_keys.ok());
  EXPECT_TRUE(commit_keys->empty());
  auto version_keys = (*reopened)->List(kVersionPrefix);
  ASSERT_TRUE(version_keys.ok());
  EXPECT_EQ(version_keys->size(), keys.size() - 1);
}

}  // namespace
}  // namespace aft
