// Tests for the baseline clients and the anomaly checker.

#include <gtest/gtest.h>

#include "src/baseline/anomaly_checker.h"
#include "src/baseline/dynamo_txn_client.h"
#include "src/baseline/plain_client.h"
#include "src/storage/sim_dynamo.h"

namespace aft {
namespace {

SimDynamoOptions InstantDynamo() {
  SimDynamoOptions options;
  options.profile = EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero()};
  options.staleness = StalenessModel{};
  options.txn_call = LatencyModel::Zero();
  return options;
}

// ---- Anomaly checker unit tests -----------------------------------------------------

TxnId Id(int64_t ts) {
  static Rng rng(55);
  return TxnId(ts, Uuid::Random(rng));
}

ReadObservation Obs(const std::string& key, const TxnId& version,
                    std::vector<std::string> cowritten) {
  return ReadObservation{key, version,
                         std::make_shared<const std::vector<std::string>>(std::move(cowritten))};
}

TEST(AnomalyCheckerTest, CleanLogPasses) {
  TxnLog log;
  log.self = Id(100);
  const TxnId writer = Id(50);
  log.AddRead(Obs("k", writer, {"k", "l"}));
  log.AddRead(Obs("l", writer, {"k", "l"}));
  log.AddWrite("m");
  const AnomalyVerdict verdict = CheckTransaction(log);
  EXPECT_FALSE(verdict.ryw_anomaly);
  EXPECT_FALSE(verdict.fr_anomaly);
}

TEST(AnomalyCheckerTest, ReadingOwnWriteIsClean) {
  TxnLog log;
  log.self = Id(100);
  log.AddWrite("k");
  log.AddRead(Obs("k", log.self, {"k"}));
  EXPECT_FALSE(CheckTransaction(log).ryw_anomaly);
}

TEST(AnomalyCheckerTest, ReadAfterWriteObservingOtherVersionIsRyw) {
  TxnLog log;
  log.self = Id(100);
  log.AddWrite("k");
  log.AddRead(Obs("k", Id(200), {"k"}));  // Someone else's version.
  EXPECT_TRUE(CheckTransaction(log).ryw_anomaly);
}

TEST(AnomalyCheckerTest, ReadAfterWriteObservingNullIsRyw) {
  TxnLog log;
  log.self = Id(100);
  log.AddWrite("k");
  log.AddRead(ReadObservation{"k", TxnId::Null(), nullptr});  // Write not visible.
  EXPECT_TRUE(CheckTransaction(log).ryw_anomaly);
}

TEST(AnomalyCheckerTest, ReadBeforeWriteIsNotRyw) {
  TxnLog log;
  log.self = Id(100);
  log.AddRead(Obs("k", Id(50), {"k"}));
  log.AddWrite("k");
  EXPECT_FALSE(CheckTransaction(log).ryw_anomaly);
}

TEST(AnomalyCheckerTest, FracturedReadIsDetected) {
  // T60 wrote {k,l}; we saw k from T60 but l from older T40.
  TxnLog log;
  log.self = Id(100);
  log.AddRead(Obs("k", Id(60), {"k", "l"}));
  log.AddRead(Obs("l", Id(40), {"l"}));
  EXPECT_TRUE(CheckTransaction(log).fr_anomaly);
}

TEST(AnomalyCheckerTest, FracturedReadDetectedRegardlessOfOrder) {
  TxnLog log;
  log.self = Id(100);
  log.AddRead(Obs("l", Id(40), {"l"}));
  log.AddRead(Obs("k", Id(60), {"k", "l"}));
  EXPECT_TRUE(CheckTransaction(log).fr_anomaly);
}

TEST(AnomalyCheckerTest, NewerCowrittenReadIsNotFractured) {
  // Reading l NEWER than the cowritten constraint is fine (j >= i).
  TxnLog log;
  log.self = Id(100);
  log.AddRead(Obs("k", Id(60), {"k", "l"}));
  log.AddRead(Obs("l", Id(80), {"l"}));
  EXPECT_FALSE(CheckTransaction(log).fr_anomaly);
}

TEST(AnomalyCheckerTest, RepeatableReadViolationCountsAsFractured) {
  TxnLog log;
  log.self = Id(100);
  log.AddRead(Obs("k", Id(40), {"k"}));
  log.AddRead(Obs("k", Id(60), {"k"}));
  EXPECT_TRUE(CheckTransaction(log).fr_anomaly);
}

TEST(AnomalyCheckerTest, NullReadsDoNotFracture) {
  TxnLog log;
  log.self = Id(100);
  log.AddRead(Obs("k", Id(60), {"k", "l"}));
  log.AddRead(ReadObservation{"l", TxnId::Null(), nullptr});
  EXPECT_FALSE(CheckTransaction(log).fr_anomaly);
}

TEST(AnomalyCheckerTest, CountersAccumulate) {
  AnomalyCounters counters;
  counters.Accumulate(AnomalyVerdict{true, false});
  counters.Accumulate(AnomalyVerdict{false, true});
  counters.Accumulate(AnomalyVerdict{false, false});
  EXPECT_EQ(counters.transactions.load(), 3u);
  EXPECT_EQ(counters.ryw_anomalies.load(), 1u);
  EXPECT_EQ(counters.fr_anomalies.load(), 1u);
}

// ---- PlainTransaction -----------------------------------------------------------------

TEST(PlainClientTest, PutEmbedsMetadataAndGetDecodesIt) {
  SimClock clock;
  SimDynamo storage(clock, InstantDynamo());
  PlainTransaction writer(storage, clock, {"k", "l"});
  ASSERT_TRUE(writer.Put("k", "payload-k").ok());

  PlainTransaction reader(storage, clock, {});
  auto value = reader.Get("k");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->value(), "payload-k");
  ASSERT_EQ(reader.log().events.size(), 1u);
  const ReadObservation& obs = reader.log().events[0].read;
  EXPECT_EQ(obs.version, writer.id());
  ASSERT_NE(obs.cowritten, nullptr);
  EXPECT_EQ(*obs.cowritten, (std::vector<std::string>{"k", "l"}));
}

TEST(PlainClientTest, MissingKeyIsNullObservation) {
  SimClock clock;
  SimDynamo storage(clock, InstantDynamo());
  PlainTransaction txn(storage, clock, {});
  auto value = txn.Get("missing");
  ASSERT_TRUE(value.ok());
  EXPECT_FALSE(value->has_value());
  EXPECT_TRUE(txn.log().events[0].read.version.IsNull());
}

TEST(PlainClientTest, DecodeObservationToleratesForeignBytes) {
  const ReadObservation obs = DecodeObservation("k", std::optional<std::string>("raw-bytes"));
  EXPECT_TRUE(obs.version.IsNull());
  EXPECT_EQ(obs.key, "k");
}

TEST(PlainClientTest, WritesAreImmediatelyVisibleToOthers) {
  // This is precisely the fractional-execution hazard: no commit point.
  SimClock clock;
  SimDynamo storage(clock, InstantDynamo());
  PlainTransaction writer(storage, clock, {"k", "l"});
  ASSERT_TRUE(writer.Put("k", "half").ok());
  // l not yet written — another client already sees the partial state.
  PlainTransaction reader(storage, clock, {});
  EXPECT_TRUE(reader.Get("k")->has_value());
  EXPECT_FALSE(reader.Get("l")->has_value());
}

// ---- DynamoTxnTransaction --------------------------------------------------------------

TEST(DynamoTxnClientTest, WriteTxnInstallsAtomicallyAndReadsDecode) {
  SimClock clock;
  SimDynamo storage(clock, InstantDynamo());
  DynamoTxnTransaction writer(storage, clock, {"x", "y"});
  std::vector<WriteOp> ops{{"x", "1"}, {"y", "2"}};
  ASSERT_TRUE(writer.WriteTxn(ops).ok());

  DynamoTxnTransaction reader(storage, clock, {});
  std::vector<std::string> keys{"x", "y"};
  auto values = reader.ReadTxn(keys);
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(values->at(0).value(), "1");
  EXPECT_EQ(values->at(1).value(), "2");
  EXPECT_EQ(reader.log().events.size(), 2u);
  EXPECT_EQ(reader.log().events[0].read.version, writer.id());
}

TEST(DynamoTxnClientTest, ConflictsAreRetriedWithBackoff) {
  RealClock clock(1.0);
  SimDynamoOptions options = InstantDynamo();
  options.txn_call = LatencyModel(15.0, 0.0, 15.0);
  SimDynamo storage(clock, options);
  // Two threads hammer the same key; both must eventually succeed thanks to
  // the client-side retry loop.
  std::atomic<int> successes{0};
  std::atomic<int> retries{0};
  auto worker = [&] {
    DynamoTxnTransaction txn(storage, clock, {"hot"});
    std::vector<WriteOp> ops{{"hot", "v"}};
    if (txn.WriteTxn(ops).ok()) {
      successes.fetch_add(1);
    }
    retries.fetch_add(txn.conflict_retries());
  };
  std::thread a(worker);
  std::thread b(worker);
  a.join();
  b.join();
  EXPECT_EQ(successes.load(), 2);
}

}  // namespace
}  // namespace aft
