// Tests for the packed (log-structured) data layout — the §8 "Efficient
// Data Layout" extension: one segment object per commit, locators in the
// commit record, ranged reads.

#include <gtest/gtest.h>

#include "src/cluster/deployment.h"
#include "src/storage/sim_dynamo.h"
#include "src/storage/sim_s3.h"

namespace aft {
namespace {

SimS3Options InstantS3() {
  SimS3Options options;
  options.profile = EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero()};
  options.staleness = StalenessModel{};
  return options;
}

AftNodeOptions PackedOptions() {
  AftNodeOptions options;
  options.packed_layout = true;
  options.service_cores = 0;
  return options;
}

class PackedLayoutTest : public ::testing::Test {
 protected:
  PackedLayoutTest() : storage_(clock_, InstantS3()) {}

  std::unique_ptr<AftNode> MakeNode(const std::string& id, AftNodeOptions options) {
    auto node = std::make_unique<AftNode>(id, storage_, clock_, options);
    EXPECT_TRUE(node->Start().ok());
    return node;
  }

  SimClock clock_;
  SimS3 storage_;
};

TEST_F(PackedLayoutTest, CommitWritesOneSegmentNotPerKeyObjects) {
  auto node = MakeNode("n0", PackedOptions());
  auto txid = node->StartTransaction();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(node->Put(*txid, "k" + std::to_string(i), "value" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(node->CommitTransaction(*txid).ok());
  EXPECT_EQ(storage_.List(kSegmentPrefix)->size(), 1u);
  EXPECT_TRUE(storage_.List(kVersionPrefix)->empty());
  // 1 segment PUT + 1 commit record PUT (vs 5+1 in the per-key layout).
  EXPECT_EQ(storage_.counters().puts.load(), 2u);
}

TEST_F(PackedLayoutTest, ReadsSliceTheSegmentByLocator) {
  auto node = MakeNode("n0", PackedOptions());
  auto writer = node->StartTransaction();
  ASSERT_TRUE(node->Put(*writer, "alpha", "AAAA").ok());
  ASSERT_TRUE(node->Put(*writer, "beta", "BBBBBBBB").ok());
  ASSERT_TRUE(node->Put(*writer, "gamma", "CC").ok());
  ASSERT_TRUE(node->CommitTransaction(*writer).ok());

  // Fresh node with caching DISABLED forces ranged storage reads.
  AftNodeOptions uncached = PackedOptions();
  uncached.data_cache_bytes = 0;
  auto reader_node = MakeNode("n1", uncached);
  auto reader = reader_node->StartTransaction();
  EXPECT_EQ(reader_node->Get(*reader, "alpha")->value(), "AAAA");
  EXPECT_EQ(reader_node->Get(*reader, "beta")->value(), "BBBBBBBB");
  EXPECT_EQ(reader_node->Get(*reader, "gamma")->value(), "CC");
}

TEST_F(PackedLayoutTest, RecordCarriesLocators) {
  auto node = MakeNode("n0", PackedOptions());
  auto txid = node->StartTransaction();
  ASSERT_TRUE(node->Put(*txid, "x", "12345").ok());
  ASSERT_TRUE(node->Put(*txid, "y", "678").ok());
  auto commit_id = node->CommitTransaction(*txid);
  ASSERT_TRUE(commit_id.ok());

  auto bytes = storage_.Get(CommitStorageKey(*commit_id));
  ASSERT_TRUE(bytes.ok());
  auto record = CommitRecord::Deserialize(*bytes);
  ASSERT_TRUE(record.ok());
  EXPECT_TRUE(record->packed());
  EXPECT_EQ(record->segment_count, 1u);
  ASSERT_EQ(record->locators.size(), 2u);
  const VersionLocator* x = record->FindLocator("x");
  const VersionLocator* y = record->FindLocator("y");
  ASSERT_NE(x, nullptr);
  ASSERT_NE(y, nullptr);
  EXPECT_EQ(x->length, 5u);
  EXPECT_EQ(y->length, 3u);
  EXPECT_EQ(record->FindLocator("z"), nullptr);
}

TEST_F(PackedLayoutTest, SpillsCreateMultipleSegmentsAndRewritesRelocate) {
  AftNodeOptions options = PackedOptions();
  options.spill_threshold_bytes = 8;
  auto node = MakeNode("n0", options);
  auto txid = node->StartTransaction();
  ASSERT_TRUE(node->Put(*txid, "big", "0123456789").ok());  // Spill -> segment 0.
  ASSERT_TRUE(node->Put(*txid, "big", "rewritten!").ok());  // Dirty again.
  ASSERT_TRUE(node->Put(*txid, "other", "zzzz").ok());
  ASSERT_TRUE(node->CommitTransaction(*txid).ok());
  EXPECT_GE(storage_.List(kSegmentPrefix)->size(), 2u);

  auto reader = node->StartTransaction();
  EXPECT_EQ(node->Get(*reader, "big")->value(), "rewritten!");
  EXPECT_EQ(node->Get(*reader, "other")->value(), "zzzz");
}

TEST_F(PackedLayoutTest, AbortDeletesSpilledSegments) {
  AftNodeOptions options = PackedOptions();
  options.spill_threshold_bytes = 8;
  auto node = MakeNode("n0", options);
  auto txid = node->StartTransaction();
  ASSERT_TRUE(node->Put(*txid, "doomed", "0123456789abcdef").ok());
  ASSERT_EQ(storage_.List(kSegmentPrefix)->size(), 1u);
  ASSERT_TRUE(node->AbortTransaction(*txid).ok());
  EXPECT_TRUE(storage_.List(kSegmentPrefix)->empty());
}

TEST_F(PackedLayoutTest, ReadAtomicityHoldsAcrossLayout) {
  auto node = MakeNode("n0", PackedOptions());
  // Same §3.2 scenario as the per-key tests: no fractured reads.
  auto t1 = node->StartTransaction();
  ASSERT_TRUE(node->Put(*t1, "l", "l1").ok());
  ASSERT_TRUE(node->CommitTransaction(*t1).ok());
  auto t2 = node->StartTransaction();
  ASSERT_TRUE(node->Put(*t2, "k", "k2").ok());
  ASSERT_TRUE(node->Put(*t2, "l", "l2").ok());
  ASSERT_TRUE(node->CommitTransaction(*t2).ok());

  auto reader = node->StartTransaction();
  EXPECT_EQ(node->Get(*reader, "k")->value(), "k2");
  EXPECT_EQ(node->Get(*reader, "l")->value(), "l2");
}

TEST_F(PackedLayoutTest, GlobalGcDeletesSegments) {
  SimS3 fresh(clock_, InstantS3());
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 1;
  cluster_options.start_background_threads = false;
  cluster_options.node_options = PackedOptions();
  ClusterDeployment cluster(fresh, clock_, cluster_options);
  ASSERT_TRUE(cluster.Start().ok());
  AftNode& node = *cluster.node(0);

  auto commit = [&](const std::string& value) {
    auto txid = node.StartTransaction();
    EXPECT_TRUE(node.Put(*txid, "k", value).ok());
    EXPECT_TRUE(node.CommitTransaction(*txid).ok());
  };
  commit("old");
  commit("new");
  cluster.bus().RunOnce();
  (void)node.RunLocalGcOnce();
  EXPECT_EQ(cluster.fault_manager().RunGlobalGcOnce(), 1u);
  cluster.fault_manager().Stop();
  // Only the surviving transaction's segment remains.
  EXPECT_EQ(fresh.List(kSegmentPrefix)->size(), 1u);
  auto reader = node.StartTransaction();
  EXPECT_EQ(node.Get(*reader, "k")->value(), "new");
}

TEST_F(PackedLayoutTest, MixedLayoutsInteroperate) {
  // A packed node and a per-key node over the SAME storage: each reads the
  // other's commits (the record describes its own layout).
  AftNodeOptions per_key;
  per_key.service_cores = 0;
  auto packed_node = MakeNode("packed", PackedOptions());
  auto classic_node = MakeNode("classic", per_key);

  auto t1 = packed_node->StartTransaction();
  ASSERT_TRUE(packed_node->Put(*t1, "from-packed", "p").ok());
  ASSERT_TRUE(packed_node->CommitTransaction(*t1).ok());
  auto t2 = classic_node->StartTransaction();
  ASSERT_TRUE(classic_node->Put(*t2, "from-classic", "c").ok());
  ASSERT_TRUE(classic_node->CommitTransaction(*t2).ok());

  // Cross-pollinate via drains.
  std::vector<CommitRecordPtr> from_packed;
  std::vector<CommitRecordPtr> from_classic;
  packed_node->DrainRecentCommits(nullptr, &from_packed);
  classic_node->DrainRecentCommits(nullptr, &from_classic);
  packed_node->ApplyRemoteCommits(from_classic);
  classic_node->ApplyRemoteCommits(from_packed);

  auto r1 = classic_node->StartTransaction();
  EXPECT_EQ(classic_node->Get(*r1, "from-packed")->value(), "p");
  auto r2 = packed_node->StartTransaction();
  EXPECT_EQ(packed_node->Get(*r2, "from-classic")->value(), "c");
}

}  // namespace
}  // namespace aft
