// Unit tests for transaction IDs, record codecs and the storage key layout.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/core/records.h"
#include "src/core/txn_id.h"

namespace aft {
namespace {

TEST(TxnIdTest, NullIsOldest) {
  Rng rng(1);
  EXPECT_TRUE(TxnId::Null().IsNull());
  const TxnId id(1, Uuid::Random(rng));
  EXPECT_LT(TxnId::Null(), id);
}

TEST(TxnIdTest, OrderedByTimestampThenUuid) {
  const TxnId a(100, Uuid(1, 1));
  const TxnId b(100, Uuid(1, 2));
  const TxnId c(200, Uuid(0, 0));
  EXPECT_LT(a, b);  // Same timestamp: UUID breaks the tie.
  EXPECT_LT(b, c);  // Timestamp dominates.
  EXPECT_EQ(a, TxnId(100, Uuid(1, 1)));
}

TEST(TxnIdTest, EncodeRoundTrips) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const TxnId id(static_cast<int64_t>(rng.Below(1ull << 60)), Uuid::Random(rng));
    EXPECT_EQ(TxnId::Decode(id.Encode()), id);
  }
}

TEST(TxnIdTest, EncodingOrderMatchesIdOrderOnTimestamps) {
  // The zero-padded encoding makes lexicographic string order equal
  // timestamp order — the property the bootstrap listing relies on.
  Rng rng(3);
  const Uuid u = Uuid::Random(rng);
  std::vector<int64_t> timestamps{1, 99, 100, 12345, 999999999, 1726000000000000};
  for (size_t i = 0; i + 1 < timestamps.size(); ++i) {
    EXPECT_LT(TxnId(timestamps[i], u).Encode(), TxnId(timestamps[i + 1], u).Encode());
  }
}

TEST(TxnIdTest, DecodeGarbageYieldsNull) {
  EXPECT_TRUE(TxnId::Decode("garbage").IsNull());
  EXPECT_TRUE(TxnId::Decode("").IsNull());
}

TEST(StorageKeyTest, VersionKeyLayout) {
  const Uuid u(0x1111, 0x2222);
  const std::string key = VersionStorageKey("mykey", u);
  EXPECT_EQ(key.substr(0, 2), "v/");
  EXPECT_NE(key.find("mykey"), std::string::npos);
  EXPECT_NE(key.find(u.ToString()), std::string::npos);
}

TEST(StorageKeyTest, DistinctWritersGetDistinctVersionKeys) {
  Rng rng(5);
  const Uuid a = Uuid::Random(rng);
  const Uuid b = Uuid::Random(rng);
  EXPECT_NE(VersionStorageKey("k", a), VersionStorageKey("k", b));
}

TEST(StorageKeyTest, CommitKeyRoundTripsTxnId) {
  Rng rng(7);
  const TxnId id(1726000000000000, Uuid::Random(rng));
  const std::string storage_key = CommitStorageKey(id);
  EXPECT_EQ(storage_key.substr(0, 2), "c/");
  EXPECT_EQ(TxnIdFromCommitStorageKey(storage_key), id);
}

TEST(CommitRecordTest, SerializeRoundTrips) {
  Rng rng(11);
  CommitRecord record{TxnId(42, Uuid::Random(rng)), {"alpha", "beta", "gamma"}};
  auto decoded = CommitRecord::Deserialize(record.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->id, record.id);
  EXPECT_EQ(decoded->write_set, record.write_set);
}

TEST(CommitRecordTest, EmptyWriteSetRoundTrips) {
  Rng rng(13);
  CommitRecord record{TxnId(1, Uuid::Random(rng)), {}};
  auto decoded = CommitRecord::Deserialize(record.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->write_set.empty());
}

TEST(CommitRecordTest, CorruptBytesAreRejected) {
  EXPECT_FALSE(CommitRecord::Deserialize("junk").ok());
  Rng rng(17);
  CommitRecord record{TxnId(42, Uuid::Random(rng)), {"a"}};
  std::string bytes = record.Serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(CommitRecord::Deserialize(bytes).ok());
}

TEST(VersionedValueTest, SerializeRoundTrips) {
  Rng rng(19);
  VersionedValue value{TxnId(77, Uuid::Random(rng)), {"k", "l"}, std::string(4096, 'x')};
  auto decoded = VersionedValue::Deserialize(value.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->writer, value.writer);
  EXPECT_EQ(decoded->cowritten, value.cowritten);
  EXPECT_EQ(decoded->payload, value.payload);
}

TEST(VersionedValueTest, MetadataOverheadIsSmall) {
  // The paper reports ~70 bytes of metadata on a 4KB payload (§6.1.2).
  Rng rng(23);
  VersionedValue value{TxnId(77, Uuid::Random(rng)),
                       {"key00000001", "key00000002"},
                       std::string(4096, 'x')};
  const size_t overhead = value.Serialize().size() - value.payload.size();
  EXPECT_LT(overhead, 128u);
}

TEST(VersionedValueTest, BinaryPayloadSurvives) {
  Rng rng(29);
  std::string payload;
  for (int i = 0; i < 256; ++i) {
    payload.push_back(static_cast<char>(i));
  }
  VersionedValue value{TxnId(1, Uuid::Random(rng)), {"k"}, payload};
  auto decoded = VersionedValue::Deserialize(value.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->payload, payload);
}

}  // namespace
}  // namespace aft
