// Tests for the workload layer: plan generation, dataset loading, the three
// request runners and the multi-client harness. These double as end-to-end
// integration tests of the whole stack with zero-latency engines.

#include <gtest/gtest.h>

#include "src/cluster/deployment.h"
#include "src/storage/sim_dynamo.h"
#include "src/storage/sim_redis.h"
#include "src/workload/dataset.h"
#include "src/workload/harness.h"

namespace aft {
namespace {

SimDynamoOptions InstantDynamo() {
  SimDynamoOptions options;
  options.profile = EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero()};
  options.staleness = StalenessModel{};
  options.txn_call = LatencyModel::Zero();
  return options;
}

FaasOptions InstantFaas() {
  FaasOptions options;
  options.invocation_overhead = LatencyModel::Zero();
  options.retry_backoff = Duration::zero();
  return options;
}

WorkloadSpec SmallSpec() {
  WorkloadSpec spec;
  spec.num_keys = 50;
  spec.zipf_theta = 1.0;
  spec.value_bytes = 64;
  return spec;
}

AftNodeOptions InstantNode() {
  AftNodeOptions options;
  options.service_cores = 0;  // No service throttle in unit tests.
  return options;
}

// ---- Workload generation ------------------------------------------------------------

TEST(WorkloadTest, KeyNamesAreStableAndOrdered) {
  EXPECT_EQ(KeyForRank(0), "key00000000");
  EXPECT_EQ(KeyForRank(42), "key00000042");
  EXPECT_LT(KeyForRank(9), KeyForRank(10));
}

TEST(WorkloadTest, PayloadHasRequestedSizeAndIsDeterministic) {
  WorkloadSpec spec;
  spec.value_bytes = 4096;
  EXPECT_EQ(MakePayload(spec, 7).size(), 4096u);
  EXPECT_EQ(MakePayload(spec, 7), MakePayload(spec, 7));
  EXPECT_NE(MakePayload(spec, 7), MakePayload(spec, 8));
}

TEST(WorkloadTest, PlanMatchesSpecShape) {
  WorkloadSpec spec = SmallSpec();
  spec.num_functions = 3;
  spec.reads_per_function = 2;
  spec.writes_per_function = 1;
  TxnPlanGenerator generator(spec);
  Rng rng(1);
  const TxnPlan plan = generator.Generate(rng);
  ASSERT_EQ(plan.functions.size(), 3u);
  for (const auto& ops : plan.functions) {
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_TRUE(ops[0].is_read);
    EXPECT_TRUE(ops[1].is_read);
    EXPECT_FALSE(ops[2].is_read);
  }
  // Write set: unique, sorted, covers every planned write.
  EXPECT_LE(plan.write_set.size(), 3u);
  EXPECT_TRUE(std::is_sorted(plan.write_set.begin(), plan.write_set.end()));
  for (const auto& ops : plan.functions) {
    for (const auto& op : ops) {
      if (!op.is_read) {
        EXPECT_TRUE(std::binary_search(plan.write_set.begin(), plan.write_set.end(), op.key));
      }
    }
  }
}

TEST(WorkloadTest, PlanKeysComeFromTheDataset) {
  WorkloadSpec spec = SmallSpec();
  TxnPlanGenerator generator(spec);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const TxnPlan plan = generator.Generate(rng);
    for (const auto& ops : plan.functions) {
      for (const auto& op : ops) {
        EXPECT_GE(op.key, KeyForRank(0));
        EXPECT_LE(op.key, KeyForRank(spec.num_keys - 1));
      }
    }
  }
}

// ---- Dataset loading -----------------------------------------------------------------

TEST(DatasetTest, AftDatasetIsServedAfterBootstrap) {
  SimClock clock;
  SimDynamo storage(clock, InstantDynamo());
  WorkloadSpec spec = SmallSpec();
  ASSERT_TRUE(LoadAftDataset(storage, spec).ok());

  AftNode node("n0", storage, clock, InstantNode());
  ASSERT_TRUE(node.Start().ok());
  EXPECT_EQ(node.CommitSetSize(), spec.num_keys);
  auto txid = node.StartTransaction();
  auto value = node.Get(*txid, KeyForRank(3));
  ASSERT_TRUE(value.ok());
  ASSERT_TRUE(value->has_value());
  EXPECT_EQ(value->value(), MakePayload(spec, 3));
}

TEST(DatasetTest, PlainDatasetDecodes) {
  SimClock clock;
  SimDynamo storage(clock, InstantDynamo());
  WorkloadSpec spec = SmallSpec();
  ASSERT_TRUE(LoadPlainDataset(storage, spec).ok());
  PlainTransaction txn(storage, clock, {});
  auto value = txn.Get(KeyForRank(5));
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->value(), MakePayload(spec, 5));
  EXPECT_FALSE(txn.log().events[0].read.version.IsNull());
}

// ---- Runners + harness (full-stack integration) -----------------------------------------

struct AftStack {
  explicit AftStack(double theta = 1.0) : storage(clock, InstantDynamo()), faas(clock, InstantFaas()) {
    spec = SmallSpec();
    spec.zipf_theta = theta;
    (void)LoadAftDataset(storage, spec);
    ClusterOptions cluster_options;
    cluster_options.num_nodes = 2;
    cluster_options.start_background_threads = false;
    cluster_options.node_options = InstantNode();
    cluster = std::make_unique<ClusterDeployment>(storage, clock, cluster_options);
    EXPECT_TRUE(cluster->Start().ok());
    AftClientOptions client_options;
    client_options.network_hop = LatencyModel::Zero();
    client = std::make_unique<AftClient>(cluster->balancer(), clock, client_options);
    plans = std::make_unique<TxnPlanGenerator>(spec);
    runner = std::make_unique<AftRequestRunner>(faas, *client, clock, *plans);
  }

  SimClock clock;
  SimDynamo storage;
  FaasPlatform faas;
  WorkloadSpec spec;
  std::unique_ptr<ClusterDeployment> cluster;
  std::unique_ptr<AftClient> client;
  std::unique_ptr<TxnPlanGenerator> plans;
  std::unique_ptr<AftRequestRunner> runner;
};

TEST(RunnerTest, AftRunnerCompletesCleanRequests) {
  AftStack stack;
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    TxnLog log;
    ASSERT_TRUE(stack.runner->RunOnce(rng, &log).ok());
    const AnomalyVerdict verdict = CheckTransaction(log);
    EXPECT_FALSE(verdict.ryw_anomaly);
    EXPECT_FALSE(verdict.fr_anomaly);
    // 2 functions x (2 reads + 1 write) = 6 events.
    EXPECT_EQ(log.events.size(), 6u);
    stack.cluster->bus().RunOnce();  // Keep nodes in sync.
  }
}

TEST(RunnerTest, AftRunnerBatchModeCompletes) {
  AftStack stack;
  stack.runner->set_batch_writes(true);
  Rng rng(4);
  TxnLog log;
  ASSERT_TRUE(stack.runner->RunOnce(rng, &log).ok());
  EXPECT_EQ(log.events.size(), 6u);
}

TEST(RunnerTest, AftRunnerSurvivesFunctionCrashes) {
  AftStack stack;
  FaasOptions crashy = InstantFaas();
  crashy.crash_probability = 0.3;
  crashy.max_retries = 50;
  FaasPlatform faas(stack.clock, crashy);
  AftRequestRunner runner(faas, *stack.client, stack.clock, *stack.plans);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    TxnLog log;
    ASSERT_TRUE(runner.RunOnce(rng, &log).ok());
    const AnomalyVerdict verdict = CheckTransaction(log);
    EXPECT_FALSE(verdict.ryw_anomaly) << "retries must stay idempotent";
    EXPECT_FALSE(verdict.fr_anomaly);
  }
  EXPECT_GT(faas.stats().crashes_injected.load(), 0u);
}

TEST(RunnerTest, PlainRunnerProducesObservationLogs) {
  SimClock clock;
  SimDynamo storage(clock, InstantDynamo());
  WorkloadSpec spec = SmallSpec();
  (void)LoadPlainDataset(storage, spec);
  FaasPlatform faas(clock, InstantFaas());
  TxnPlanGenerator plans(spec);
  PlainRequestRunner runner(faas, storage, clock, plans);
  Rng rng(6);
  TxnLog log;
  ASSERT_TRUE(runner.RunOnce(rng, &log).ok());
  EXPECT_EQ(log.events.size(), 6u);
}

TEST(RunnerTest, DynamoTxnRunnerGroupsWrites) {
  SimClock clock;
  SimDynamo storage(clock, InstantDynamo());
  WorkloadSpec spec = SmallSpec();
  (void)LoadPlainDataset(storage, spec);
  FaasPlatform faas(clock, InstantFaas());
  TxnPlanGenerator plans(spec);
  DynamoTxnRequestRunner runner(faas, storage, clock, plans);
  Rng rng(7);
  TxnLog log;
  ASSERT_TRUE(runner.RunOnce(rng, &log).ok());
  // All reads observed + all writes logged; writes installed atomically via
  // one TransactWriteItems call.
  EXPECT_GE(storage.txn_counters().txn_gets.load(), 2u);
  EXPECT_EQ(storage.txn_counters().txn_writes.load(), 1u);
  // Grouped writes mean RYW anomalies are impossible by construction.
  EXPECT_FALSE(CheckTransaction(log).ryw_anomaly);
}

TEST(HarnessTest, MultiClientRunAggregates) {
  AftStack stack;
  HarnessOptions options;
  options.num_clients = 4;
  options.requests_per_client = 10;
  const HarnessResult result = RunClients(stack.clock, *stack.runner, options);
  EXPECT_EQ(result.completed, 40u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_EQ(result.latency.count, 40u);
  EXPECT_EQ(result.ryw_anomalies, 0u);
  EXPECT_EQ(result.fr_anomalies, 0u);
}

TEST(HarnessTest, AftNeverShowsAnomaliesUnderContention) {
  // Heavy skew + concurrent clients on a 2-node cluster with gossip delays:
  // the strongest anomaly hunt we can run in a unit test.
  AftStack stack(/*theta=*/2.0);
  HarnessOptions options;
  options.num_clients = 8;
  options.requests_per_client = 25;
  const HarnessResult result = RunClients(stack.clock, *stack.runner, options);
  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(result.ryw_anomalies, 0u) << "AFT must guarantee read-your-writes";
  EXPECT_EQ(result.fr_anomalies, 0u) << "AFT must guarantee read atomicity";
}

TEST(HarnessTest, TimelineReceivesEvents) {
  AftStack stack;
  HarnessOptions options;
  options.num_clients = 2;
  options.requests_per_client = 5;
  ThroughputTimeline timeline(stack.clock, Millis(100));
  const HarnessResult result = RunClients(stack.clock, *stack.runner, options, &timeline);
  EXPECT_EQ(timeline.total(), result.completed);
}

}  // namespace
}  // namespace aft
