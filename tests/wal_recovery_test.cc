// Crash recovery for the WAL-backed LocalEngine (src/storage/wal_recovery.h).
//
// Covers the recovery rules at both layers:
//   * WAL level — torn tails are truncated at the first bad record, a bad CRC
//     mid-log drops every later file, *.tmp staging files are purged.
//   * Engine level — replay is idempotent, compaction+replay is
//     state-equivalent, group commit really batches fsyncs.
//   * Process level — a kill -9 crash harness: a child process commits AFT
//     transactions through a LocalEngine until SIGKILLed mid-stream, then the
//     parent replays the log and checks the §3.3 invariant that every visible
//     commit record's data writes are durable.
//
// The crash harness needs the binary to double as its own child
// (`wal_recovery_test --crash-child <dir>`), so this file carries its own
// main() and is registered in tests/CMakeLists.txt WITHOUT gtest_main.

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/core/aft_node.h"
#include "src/core/records.h"
#include "src/storage/local_engine.h"
#include "src/storage/wal.h"
#include "src/storage/wal_recovery.h"

namespace aft {
namespace {

// ---- helpers ----------------------------------------------------------------

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/aft_walrec_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    path_ = dir == nullptr ? "" : dir;
  }
  ~TempDir() {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::map<std::string, std::string> Snapshot(StorageEngine& engine) {
  std::map<std::string, std::string> out;
  auto keys = engine.List("");
  EXPECT_TRUE(keys.ok());
  for (const std::string& key : *keys) {
    auto value = engine.Get(key);
    EXPECT_TRUE(value.ok()) << key;
    if (value.ok()) {
      out[key] = *value;
    }
  }
  return out;
}

// The single on-disk WAL file of a freshly written, un-rotated log.
std::string OnlyWalFilePath(const std::string& dir) {
  auto files = ListWalFiles(dir);
  EXPECT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 1u);
  return files->empty() ? "" : files->front().path;
}

uint64_t FileSize(const std::string& path) {
  struct stat st;
  EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
  return static_cast<uint64_t>(st.st_size);
}

void AppendRaw(const std::string& path, std::string_view bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  ASSERT_GE(fd, 0) << path;
  ASSERT_EQ(::write(fd, bytes.data(), bytes.size()), static_cast<ssize_t>(bytes.size()));
  ::close(fd);
}

void FlipByteAt(const std::string& path, uint64_t offset) {
  int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0) << path;
  char b = 0;
  ASSERT_EQ(::pread(fd, &b, 1, static_cast<off_t>(offset)), 1);
  b ^= 0x5a;
  ASSERT_EQ(::pwrite(fd, &b, 1, static_cast<off_t>(offset)), 1);
  ::close(fd);
}

// Replays `dir` collecting (key, value) pairs in replay order.
Result<WalReplayStats> ReplayCollect(const std::string& dir,
                                     std::vector<std::pair<std::string, std::string>>* out) {
  return ReplayWal(dir, [out](const WalRecordEvent& event) {
    out->emplace_back(std::string(event.key), std::string(event.value));
  });
}

// ---- WAL-level recovery rules -----------------------------------------------

TEST(WalRecoveryTest, RoundTripAndLocatorPread) {
  TempDir dir;
  auto wal = Wal::Open(dir.path(), 1);
  ASSERT_TRUE(wal.ok());

  const std::vector<Wal::AppendOp> ops = {
      {wal::RecordOp::kPut, "alpha", "value-a"},
      {wal::RecordOp::kPut, "beta", "value-bb"},
      {wal::RecordOp::kDelete, "alpha", ""},
  };
  std::vector<Wal::AppendedLoc> locs(ops.size());
  auto lsn = (*wal)->AppendBatch(ops, locs.data());
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE((*wal)->Sync(*lsn).ok());

  // The locator points at exactly the value bytes.
  const std::string path = wal::WalFilePath(dir.path(), locs[1].file_key);
  int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  std::string buf(locs[1].value_len, '\0');
  ASSERT_EQ(::pread(fd, buf.data(), buf.size(), static_cast<off_t>(locs[1].value_offset)),
            static_cast<ssize_t>(buf.size()));
  ::close(fd);
  EXPECT_EQ(buf, "value-bb");
  wal->reset();

  std::vector<std::pair<std::string, std::string>> replayed;
  auto stats = ReplayCollect(dir.path(), &replayed);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->truncated);
  EXPECT_EQ(stats->records, 3u);
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(replayed[0], (std::pair<std::string, std::string>{"alpha", "value-a"}));
  EXPECT_EQ(replayed[1], (std::pair<std::string, std::string>{"beta", "value-bb"}));
  EXPECT_EQ(replayed[2].first, "alpha");  // the delete, value empty
  EXPECT_TRUE(replayed[2].second.empty());
}

TEST(WalRecoveryTest, TornTailIsTruncatedAtFirstBadRecord) {
  TempDir dir;
  auto wal = Wal::Open(dir.path(), 1);
  ASSERT_TRUE(wal.ok());
  const std::vector<Wal::AppendOp> ops = {
      {wal::RecordOp::kPut, "k1", "v1"},
      {wal::RecordOp::kPut, "k2", "v2"},
  };
  std::vector<Wal::AppendedLoc> locs(ops.size());
  auto lsn = (*wal)->AppendBatch(ops, locs.data());
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE((*wal)->Sync(*lsn).ok());
  wal->reset();

  // A torn append: a plausible header promising 100 payload bytes, followed
  // by only four — the write that was in flight when the machine died.
  const std::string path = OnlyWalFilePath(dir.path());
  const uint64_t intact_size = FileSize(path);
  std::string torn(wal::kRecordHeaderSize + 4, '\0');
  torn[0] = 100;  // little-endian payload length 100
  AppendRaw(path, torn);

  std::vector<std::pair<std::string, std::string>> replayed;
  auto stats = ReplayCollect(dir.path(), &replayed);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->truncated);
  EXPECT_EQ(stats->truncated_bytes, torn.size());
  EXPECT_EQ(stats->records, 2u);
  ASSERT_EQ(replayed.size(), 2u);
  // Recovery repaired the file in place: the torn bytes are gone from disk.
  EXPECT_EQ(FileSize(path), intact_size);

  // A second replay of the repaired log is clean.
  replayed.clear();
  auto again = ReplayCollect(dir.path(), &replayed);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->truncated);
  EXPECT_EQ(replayed.size(), 2u);
}

TEST(WalRecoveryTest, TornHeaderShorterThanFrameIsTruncated) {
  TempDir dir;
  auto wal = Wal::Open(dir.path(), 1);
  ASSERT_TRUE(wal.ok());
  const std::vector<Wal::AppendOp> ops = {{wal::RecordOp::kPut, "k1", "v1"}};
  std::vector<Wal::AppendedLoc> locs(ops.size());
  auto lsn = (*wal)->AppendBatch(ops, locs.data());
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE((*wal)->Sync(*lsn).ok());
  wal->reset();

  const std::string path = OnlyWalFilePath(dir.path());
  const uint64_t intact_size = FileSize(path);
  AppendRaw(path, "\x03");  // 1 stray byte: shorter than any record header

  std::vector<std::pair<std::string, std::string>> replayed;
  auto stats = ReplayCollect(dir.path(), &replayed);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->truncated);
  EXPECT_EQ(replayed.size(), 1u);
  EXPECT_EQ(FileSize(path), intact_size);
}

TEST(WalRecoveryTest, BadCrcMidLogDropsEveryLaterFile) {
  TempDir dir;
  auto wal = Wal::Open(dir.path(), 1);
  ASSERT_TRUE(wal.ok());

  // Three files of three records each, rotated by hand so the boundaries are
  // known exactly.
  auto append_three = [&](int file_no) {
    for (int r = 0; r < 3; ++r) {
      const std::string key = "f" + std::to_string(file_no) + "r" + std::to_string(r);
      const std::vector<Wal::AppendOp> ops = {{wal::RecordOp::kPut, key, "vvvv"}};
      Wal::AppendedLoc loc;
      auto lsn = (*wal)->AppendBatch(ops, &loc);
      ASSERT_TRUE(lsn.ok());
      ASSERT_TRUE((*wal)->Sync(*lsn).ok());
    }
  };
  append_three(1);
  ASSERT_TRUE((*wal)->Rotate().ok());
  append_three(2);
  ASSERT_TRUE((*wal)->Rotate().ok());
  append_three(3);
  wal->reset();

  // Corrupt one payload byte of file 2's MIDDLE record: the key byte right
  // after the record's header + op + key-length prefix.
  const uint64_t record_bytes = wal::PutRecordBytes(4, 4);  // "f2r1" / "vvvv"
  const std::string file2 = wal::WalFilePath(dir.path(), wal::MakeFileKey(2, 0));
  const std::string file3 = wal::WalFilePath(dir.path(), wal::MakeFileKey(3, 0));
  FlipByteAt(file2, record_bytes + wal::kRecordHeaderSize + 1 + 4);

  std::vector<std::pair<std::string, std::string>> replayed;
  auto stats = ReplayCollect(dir.path(), &replayed);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->truncated);
  EXPECT_EQ(stats->dropped_files, 1u);
  // max_seq covers DROPPED files too, so the next Open can never collide
  // with a file name recovery just deleted.
  EXPECT_EQ(stats->max_seq, 3u);

  // All of file 1, the intact prefix of file 2, nothing from file 3.
  std::vector<std::string> keys;
  for (const auto& [key, value] : replayed) {
    keys.push_back(key);
  }
  EXPECT_EQ(keys, (std::vector<std::string>{"f1r0", "f1r1", "f1r2", "f2r0"}));
  EXPECT_EQ(FileSize(file2), record_bytes);  // truncated to the intact prefix
  struct stat st;
  EXPECT_NE(::stat(file3.c_str(), &st), 0);  // later file deleted outright
}

TEST(WalRecoveryTest, StagingTmpFilesArePurgedOnOpen) {
  TempDir dir;
  // A compaction that crashed before its rename leaves a *.tmp behind; an
  // unrelated file must be left alone.
  const std::string tmp = dir.path() + "/wal-000004.c1.log.tmp";
  const std::string other = dir.path() + "/notes.txt";
  for (const std::string& p : {tmp, other}) {
    FILE* f = std::fopen(p.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("leftover", f);
    std::fclose(f);
  }

  auto engine = LocalEngine::Open(dir.path());
  ASSERT_TRUE(engine.ok());
  struct stat st;
  EXPECT_NE(::stat(tmp.c_str(), &st), 0);
  EXPECT_EQ(::stat(other.c_str(), &st), 0);
}

// ---- engine-level recovery --------------------------------------------------

LocalEngineOptions SmallFileOptions() {
  LocalEngineOptions options;
  options.max_log_bytes = 4096;  // force frequent rotation
  options.start_compaction_thread = false;
  return options;
}

TEST(WalRecoveryTest, ReplayIsIdempotentAcrossReopens) {
  TempDir dir;
  std::map<std::string, std::string> expected;
  {
    auto engine = LocalEngine::Open(dir.path(), SmallFileOptions());
    ASSERT_TRUE(engine.ok());
    for (int i = 0; i < 120; ++i) {
      const std::string key = "key-" + std::to_string(i % 40);  // overwrites
      const std::string value = "gen-" + std::to_string(i) + std::string(48, 'x');
      ASSERT_TRUE((*engine)->Put(key, value).ok());
      expected[key] = value;
    }
    for (int i = 0; i < 40; i += 3) {
      const std::string key = "key-" + std::to_string(i);
      ASSERT_TRUE((*engine)->Delete(key).ok());
      expected.erase(key);
    }
    EXPECT_EQ(Snapshot(**engine), expected);
  }
  // Two crash/recover cycles: replay must converge to the same state each
  // time, and re-replaying a recovered log must change nothing.
  for (int cycle = 0; cycle < 2; ++cycle) {
    auto engine = LocalEngine::Open(dir.path(), SmallFileOptions());
    ASSERT_TRUE(engine.ok());
    EXPECT_EQ(Snapshot(**engine), expected) << "cycle " << cycle;
  }
}

TEST(WalRecoveryTest, CompactionThenReplayIsStateEquivalent) {
  TempDir dir;
  std::map<std::string, std::string> expected;
  auto engine = LocalEngine::Open(dir.path(), SmallFileOptions());
  ASSERT_TRUE(engine.ok());
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 60; ++i) {
      const std::string key = "key-" + std::to_string(i);
      const std::string value = "r" + std::to_string(round) + "-" + std::string(64, 'a' + i % 26);
      ASSERT_TRUE((*engine)->Put(key, value).ok());
      expected[key] = value;
    }
  }
  for (int i = 0; i < 60; i += 2) {
    const std::string key = "key-" + std::to_string(i);
    ASSERT_TRUE((*engine)->Delete(key).ok());
    expected.erase(key);
  }
  EXPECT_EQ(Snapshot(**engine), expected);

  const LocalEngine::FileStats before = (*engine)->file_stats();
  ASSERT_TRUE((*engine)->CompactNow().ok());
  const LocalEngine::FileStats after = (*engine)->file_stats();
  // Three rounds of overwrites plus the deletes are reclaimed.
  EXPECT_LT(after.total_bytes, before.total_bytes);
  EXPECT_LT(after.files, before.files);
  EXPECT_EQ(after.dead_bytes, 0u);
  EXPECT_GE((*engine)->compactions(), 1u);
  EXPECT_GT((*engine)->compaction_reclaimed_bytes(), 0u);
  EXPECT_EQ(Snapshot(**engine), expected);

  // The compacted log replays to the same state.
  engine->reset();
  auto reopened = LocalEngine::Open(dir.path(), SmallFileOptions());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(Snapshot(**reopened), expected);
}

TEST(WalRecoveryTest, GroupCommitSharesFsyncsAcrossWriters) {
  TempDir dir;
  LocalEngineOptions options;
  options.flush_interval = Millis(2);  // accumulation window forms batches
  options.start_compaction_thread = false;
  auto engine = LocalEngine::Open(dir.path(), options);
  ASSERT_TRUE(engine.ok());

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 40;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE((*engine)->Put(key, "value").ok());
      }
    });
  }
  for (std::thread& w : writers) {
    w.join();
  }

  const Wal::Stats stats = (*engine)->wal_stats();
  EXPECT_EQ(stats.records, static_cast<uint64_t>(kThreads * kOpsPerThread));
  EXPECT_GT(stats.fsyncs, 0u);
  // The point of group commit: one fdatasync acknowledges many writers.
  EXPECT_LT(stats.fsyncs, stats.records);
  EXPECT_GE(stats.sync_waiters_released, stats.records);
}

// Regression for two compaction races: (1) a rotation racing the
// pre-compaction snapshot must never let the pass select — and unlink — the
// file the WAL is actively appending to (acked writes would vanish on
// replay, and later appends would fail); (2) a reader resolving a live key
// while compaction repoints the index under it must never see a spurious
// error. Tiny files keep the WAL rotating constantly so both windows stay
// hot while CompactNow passes run back to back.
TEST(WalRecoveryTest, CompactionRacesWritersAndReadersSafely) {
  TempDir dir;
  LocalEngineOptions options;
  options.max_log_bytes = 2048;  // rotate every dozen-odd records
  options.start_compaction_thread = false;
  options.fdatasync = false;  // no crash here; clean close flushes everything
  auto engine = LocalEngine::Open(dir.path(), options);
  ASSERT_TRUE(engine.ok());

  // Keys the reader thread hammers; written up front, never superseded.
  constexpr int kStableKeys = 16;
  for (int i = 0; i < kStableKeys; ++i) {
    ASSERT_TRUE((*engine)->Put("stable-" + std::to_string(i), std::string(100, 's')).ok());
  }

  // Writers are BOUNDED (not run-until-stopped): every file they roll keeps
  // an open read fd until a compaction pass absorbs it, so an unbounded
  // writer can outrun the compaction loop below into fd exhaustion.
  std::atomic<bool> stop{false};
  std::atomic<int> writers_done{0};
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 1500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kWriters; ++t) {
    workers.emplace_back([&, t] {
      // Overwrites feed compaction dead bytes; every ack must survive replay.
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const std::string key = "w" + std::to_string(t) + "-" + std::to_string(i % 32);
        const Status put = (*engine)->Put(key, std::string(120, static_cast<char>('a' + t)));
        EXPECT_TRUE(put.ok()) << put.message();
        if (!put.ok()) {
          break;
        }
      }
      writers_done.fetch_add(1, std::memory_order_release);
    });
  }
  workers.emplace_back([&] {
    for (int i = 0; !stop.load(std::memory_order_relaxed); ++i) {
      auto value = (*engine)->Get("stable-" + std::to_string(i % kStableKeys));
      EXPECT_TRUE(value.ok()) << value.status().message();
      if (!value.ok()) {
        return;
      }
    }
  });
  // Compact continuously while the writers churn, so every pass races live
  // appends, rotations, and reads.
  Status compact_status = Status::Ok();
  while (writers_done.load(std::memory_order_acquire) < kWriters) {
    compact_status = (*engine)->CompactNow();
    if (!compact_status.ok()) {
      break;
    }
  }
  if (compact_status.ok()) {
    // At least one pass even if the writers outran the loop, and a final
    // absorb of everything they left behind.
    compact_status = (*engine)->CompactNow();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : workers) {
    w.join();
  }
  ASSERT_TRUE(compact_status.ok()) << compact_status.message();
  EXPECT_GE((*engine)->compactions(), 1u);

  // Every acknowledged write is still there, both live and after a replay.
  const std::map<std::string, std::string> before = Snapshot(**engine);
  EXPECT_GE(before.size(), static_cast<size_t>(kStableKeys));
  engine->reset();
  auto reopened = LocalEngine::Open(dir.path(), options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(Snapshot(**reopened), before);
}

// ---- kill -9 crash harness --------------------------------------------------

// Child body (run via `wal_recovery_test --crash-child <dir>`): commit AFT
// transactions through a LocalEngine forever, reporting each acknowledged
// commit on stdout. The parent SIGKILLs it mid-stream.
int CrashChildMain(const char* dir) {
  auto engine = LocalEngine::Open(dir);
  if (!engine.ok()) {
    return 3;
  }
  RealClock& clock = RealClock::Default();
  AftNode node("crash-child", **engine, clock);
  if (!node.Start().ok()) {
    return 4;
  }
  for (uint64_t i = 0;; ++i) {
    auto txid = node.StartTransaction();
    if (!txid.ok()) {
      return 5;
    }
    const std::string tag = "tag-" + std::to_string(i);
    for (int k = 0; k < 4; ++k) {
      if (!node.Put(*txid, "k" + std::to_string(k), tag).ok()) {
        return 6;
      }
    }
    if (!node.CommitTransaction(*txid).ok()) {
      return 7;
    }
    // One line per ACKNOWLEDGED commit — the parent kills us only after it
    // has proof of acknowledged transactions, which recovery must preserve.
    std::printf("committed %llu\n", static_cast<unsigned long long>(i));
    std::fflush(stdout);
  }
}

// Spawns the crash child with its stdout on a pipe; returns the pid.
pid_t SpawnCrashChild(const std::string& dir, int* out_fd) {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    ::execl("/proc/self/exe", "wal_recovery_test", "--crash-child", dir.c_str(),
            static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(fds[1]);
  *out_fd = fds[0];
  return pid;
}

// Reads the child's stdout until at least `want` commit lines arrived;
// returns the number seen (bails out after a 30s stall).
uint64_t AwaitCommits(int fd, uint64_t want) {
  uint64_t commits = 0;
  char buf[256];
  while (commits < want) {
    struct pollfd pfd = {fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 30000);
    if (ready <= 0) {
      ADD_FAILURE() << "crash child stalled (saw " << commits << "/" << want << " commits)";
      break;
    }
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      ADD_FAILURE() << "crash child closed its pipe after " << commits << " commits";
      break;
    }
    for (ssize_t i = 0; i < n; ++i) {
      commits += buf[i] == '\n';
    }
  }
  return commits;
}

// The §3.3 write-ordering invariant, checked on the recovered store: every
// commit record that survived recovery must have every version object of its
// write set readable. (The converse — orphan versions without a commit
// record — is legal; the fault manager reaps those.)
void VerifyCommitInvariant(StorageEngine& engine, uint64_t* commit_records) {
  auto commit_keys = engine.List(kCommitPrefix);
  ASSERT_TRUE(commit_keys.ok());
  *commit_records = commit_keys->size();
  for (const std::string& commit_key : *commit_keys) {
    auto bytes = engine.Get(commit_key);
    ASSERT_TRUE(bytes.ok()) << commit_key;
    auto record = CommitRecord::Deserialize(*bytes);
    ASSERT_TRUE(record.ok()) << commit_key;
    for (const std::string& key : record->write_set) {
      auto version = engine.Get(VersionStorageKey(key, record->id.uuid));
      EXPECT_TRUE(version.ok())
          << "commit record " << commit_key << " is visible but its data write for '" << key
          << "' did not survive recovery — the write-ordering barrier is broken";
    }
  }
}

TEST(WalRecoveryCrashTest, KillNineDuringCommitStreamKeepsAckedCommitsReadable) {
  TempDir dir;
  uint64_t acked_total = 0;
  // Three crash cycles against the same directory: recovery has to be
  // correct not just after one crash but after crashes of recovered logs.
  for (int cycle = 0; cycle < 3; ++cycle) {
    int fd = -1;
    const pid_t pid = SpawnCrashChild(dir.path(), &fd);
    ASSERT_GT(pid, 0);
    const uint64_t acked = AwaitCommits(fd, 8);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    ::close(fd);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL)
        << "child did not die from SIGKILL (status " << wstatus << ")";
    acked_total += acked;
    ASSERT_GE(acked, 8u) << "cycle " << cycle;

    // Recover and check the invariant.
    auto engine = LocalEngine::Open(dir.path());
    ASSERT_TRUE(engine.ok()) << "cycle " << cycle;
    uint64_t commit_records = 0;
    VerifyCommitInvariant(**engine, &commit_records);
    // Every acknowledged commit survived. (More than acked may have: commits
    // the child completed after the parent's last pipe read are fine.)
    EXPECT_GE(commit_records, acked_total) << "cycle " << cycle;

    // A fresh AFT node over the recovered store serves a consistent cut:
    // all four keys exist and carry the same transaction's tag.
    RealClock& clock = RealClock::Default();
    AftNode node("verify-" + std::to_string(cycle), **engine, clock);
    ASSERT_TRUE(node.Start().ok());
    auto txid = node.StartTransaction();
    ASSERT_TRUE(txid.ok());
    std::string tag;
    for (int k = 0; k < 4; ++k) {
      auto read = node.Get(*txid, "k" + std::to_string(k));
      ASSERT_TRUE(read.ok());
      ASSERT_TRUE(read->has_value()) << "k" << k;
      if (k == 0) {
        tag = **read;
      } else {
        EXPECT_EQ(**read, tag) << "fractured read after recovery at k" << k;
      }
    }
  }
}

}  // namespace
}  // namespace aft

// Custom main: dispatch to the crash-child body when asked, otherwise run
// the suite. This is why the CMake target must not link gtest_main.
int main(int argc, char** argv) {
  if (argc >= 3 && std::string_view(argv[1]) == "--crash-child") {
    return aft::CrashChildMain(argv[2]);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
