// Concurrency stress tests, sized to run in seconds under TSan/ASan.
//
// These tests exist to give the sanitizers (and, under Clang, the thread
// safety analysis) real interleavings to chew on: many threads hammering one
// AftNode's transaction API concurrently with GC and broadcast draining, and
// a multi-node deployment committing through the load balancer while the
// multicast bus and fault manager run rounds from other threads.
//
// Assertions are deliberately coarse — counters must balance and reads must
// return *some* committed value — because the interesting failures here are
// data races and lock-order inversions, which the sanitizers report directly.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/deployment.h"
#include "src/core/aft_node.h"
#include "src/storage/sim_dynamo.h"

namespace aft {
namespace {

SimDynamoOptions InstantDynamo() {
  SimDynamoOptions options;
  options.profile = EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero()};
  options.staleness = StalenessModel{};
  options.txn_call = LatencyModel::Zero();
  return options;
}

AftNodeOptions StressNodeOptions() {
  AftNodeOptions options;
  options.service_cores = 0;  // No service throttle: threads must not sleep.
  options.enable_background_threads = false;
  return options;
}

// A small hot key set so threads genuinely contend on the same index/cache
// entries instead of sharding themselves apart.
std::string HotKey(int i) { return "hot" + std::to_string(i % 8); }

// ---- Single node -----------------------------------------------------------------

// N writer threads run read-modify-write transactions against one node while
// a GC thread sweeps local metadata and a drain thread empties the broadcast
// queue. Exercises txns_mu_, committed_mu_, broadcast_mu_, the commit-set
// cache, the key-version index, the data cache, and the read pin table from
// many threads at once.
TEST(ConcurrencyStressTest, SingleNodeHammer) {
  SimClock clock;
  SimDynamo storage(clock, InstantDynamo());
  AftNode node("stress-node", storage, clock, StressNodeOptions());
  ASSERT_TRUE(node.Start().ok());

  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 150;

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  workers.reserve(kThreads + 2);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        auto txid = node.StartTransaction();
        ASSERT_TRUE(txid.ok());
        // Read one hot key (atomic read path + read pins), write two.
        auto read = node.Get(*txid, HotKey(i));
        if (!read.ok()) {
          // kNoValidVersion forces a retry in real apps; here just abort.
          ASSERT_TRUE(node.AbortTransaction(*txid).ok());
          aborted.fetch_add(1);
          continue;
        }
        ASSERT_TRUE(node.Put(*txid, HotKey(i), "v" + std::to_string(t)).ok());
        ASSERT_TRUE(node.Put(*txid, HotKey(i + 1), "w" + std::to_string(i)).ok());
        auto commit = node.CommitTransaction(*txid);
        ASSERT_TRUE(commit.ok());
        committed.fetch_add(1);
      }
    });
  }
  // GC thread: local metadata sweeps racing the committers.
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      node.RunLocalGcOnce();
      std::this_thread::yield();
    }
  });
  // Drain thread: the multicast hook racing the commit epilogue.
  workers.emplace_back([&] {
    std::vector<CommitRecordPtr> pruned;
    std::vector<CommitRecordPtr> unpruned;
    while (!stop.load(std::memory_order_acquire)) {
      pruned.clear();
      unpruned.clear();
      node.DrainRecentCommits(&pruned, &unpruned);
      std::this_thread::yield();
    }
  });

  for (int t = 0; t < kThreads; ++t) {
    workers[t].join();
  }
  stop.store(true, std::memory_order_release);
  workers[kThreads].join();
  workers[kThreads + 1].join();

  EXPECT_EQ(committed.load() + aborted.load(),
            static_cast<uint64_t>(kThreads) * kTxnsPerThread);
  EXPECT_EQ(node.stats().txns_committed.load(), committed.load());
  EXPECT_EQ(node.RunningTransactionCount(), 0u);

  // Every hot key was committed at least once; each must now read back as a
  // committed value, never a torn or vanished one.
  auto txid = node.StartTransaction();
  ASSERT_TRUE(txid.ok());
  for (int k = 0; k < 8; ++k) {
    auto value = node.Get(*txid, HotKey(k));
    ASSERT_TRUE(value.ok());
    ASSERT_TRUE(value->has_value());
    EXPECT_FALSE((*value)->empty());
  }
  ASSERT_TRUE(node.AbortTransaction(*txid).ok());
}

// ---- Multi-node ------------------------------------------------------------------

// Committers spread across a 3-node cluster through the load balancer while
// one thread runs multicast rounds (supersedence pruning + ApplyRemoteCommits
// on peers) and another runs the fault manager's liveness / global-GC /
// orphan sweeps. Exercises the bus, balancer, fault-manager and deployment
// locks against the per-node locks.
TEST(ConcurrencyStressTest, MultiNodeMulticastAndSupersedence) {
  SimClock clock;
  SimDynamo storage(clock, InstantDynamo());

  ClusterOptions options;
  options.num_nodes = 3;
  options.node_options = StressNodeOptions();
  options.start_background_threads = false;  // Rounds driven by our threads.
  ClusterDeployment cluster(storage, clock, options);
  ASSERT_TRUE(cluster.Start().ok());

  constexpr int kThreads = 6;
  constexpr int kTxnsPerThread = 100;

  std::atomic<uint64_t> committed{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> workers;
  workers.reserve(kThreads + 2);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        AftNode* node = cluster.balancer().Pick();
        ASSERT_NE(node, nullptr);
        auto txid = node->StartTransaction();
        ASSERT_TRUE(txid.ok());
        ASSERT_TRUE(node->Put(*txid, HotKey(i), "n" + std::to_string(t)).ok());
        auto commit = node->CommitTransaction(*txid);
        ASSERT_TRUE(commit.ok());
        committed.fetch_add(1);
      }
    });
  }
  // Multicast rounds racing the committers: drains each node and applies the
  // pruned records to its peers.
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      cluster.bus().RunOnce();
      std::this_thread::yield();
    }
  });
  // Fault-manager rounds: liveness scan, global GC, orphan sweep.
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      cluster.fault_manager().RunLivenessScanOnce();
      cluster.fault_manager().RunGlobalGcOnce();
      cluster.fault_manager().RunOrphanSweepOnce();
      std::this_thread::yield();
    }
  });

  for (int t = 0; t < kThreads; ++t) {
    workers[t].join();
  }
  stop.store(true, std::memory_order_release);
  workers[kThreads].join();
  workers[kThreads + 1].join();

  EXPECT_EQ(committed.load(), static_cast<uint64_t>(kThreads) * kTxnsPerThread);

  // Final multicast round, then every node must serve every hot key with a
  // committed (non-torn) value.
  cluster.bus().RunOnce();
  for (size_t n = 0; n < cluster.node_count(); ++n) {
    AftNode* node = cluster.node(n);
    ASSERT_NE(node, nullptr);
    auto txid = node->StartTransaction();
    ASSERT_TRUE(txid.ok());
    for (int k = 0; k < 8; ++k) {
      auto value = node->Get(*txid, HotKey(k));
      ASSERT_TRUE(value.ok());
      ASSERT_TRUE(value->has_value());
      EXPECT_EQ((*value)->front(), 'n');
    }
    ASSERT_TRUE(node->AbortTransaction(*txid).ok());
  }
  cluster.Stop();
}

}  // namespace
}  // namespace aft
