// Tests for the simulated FaaS platform: dispatch, chains, concurrency
// limits, retries and failure injection.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/faas/faas_platform.h"

namespace aft {
namespace {

FaasOptions InstantFaas() {
  FaasOptions options;
  options.invocation_overhead = LatencyModel::Zero();
  options.cold_start_probability = 0;
  options.retry_backoff = Duration::zero();
  return options;
}

TEST(FaasTest, InvokeRunsFunction) {
  SimClock clock;
  FaasPlatform faas(clock, InstantFaas());
  bool ran = false;
  EXPECT_TRUE(faas.Invoke([&](int) {
    ran = true;
    return Status::Ok();
  }).ok());
  EXPECT_TRUE(ran);
  EXPECT_EQ(faas.stats().invocations.load(), 1u);
}

TEST(FaasTest, ChainRunsInOrderAndStopsOnError) {
  SimClock clock;
  FaasPlatform faas(clock, InstantFaas());
  std::vector<int> order;
  Status status = faas.InvokeChain({
      [&](int) {
        order.push_back(1);
        return Status::Ok();
      },
      [&](int) {
        order.push_back(2);
        return Status::Aborted("stop here");
      },
      [&](int) {
        order.push_back(3);
        return Status::Ok();
      },
  });
  EXPECT_TRUE(status.IsAborted());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(FaasTest, InvocationOverheadIsCharged) {
  SimClock clock;
  FaasOptions options = InstantFaas();
  options.invocation_overhead = LatencyModel(10.0, 0.0, 10.0);
  FaasPlatform faas(clock, options);
  const TimePoint before = clock.Now();
  (void)faas.InvokeChain({[](int) { return Status::Ok(); }, [](int) { return Status::Ok(); }});
  EXPECT_GE(clock.Now() - before, Millis(20));
}

TEST(FaasTest, InfrastructureFailuresAreRetried) {
  SimClock clock;
  FaasPlatform faas(clock, InstantFaas());
  int attempts = 0;
  Status status = faas.Invoke([&](int attempt) {
    ++attempts;
    EXPECT_EQ(attempt, attempts - 1);
    if (attempts < 3) {
      return Status::Unavailable("flaky");
    }
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(faas.stats().retries.load(), 2u);
}

TEST(FaasTest, ApplicationErrorsAreNotRetried) {
  SimClock clock;
  FaasPlatform faas(clock, InstantFaas());
  int attempts = 0;
  Status status = faas.Invoke([&](int) {
    ++attempts;
    return Status::Aborted("app-level");
  });
  EXPECT_TRUE(status.IsAborted());
  EXPECT_EQ(attempts, 1);
}

TEST(FaasTest, RetriesExhaustEventually) {
  SimClock clock;
  FaasOptions options = InstantFaas();
  options.max_retries = 2;
  FaasPlatform faas(clock, options);
  int attempts = 0;
  Status status = faas.Invoke([&](int) {
    ++attempts;
    return Status::Unavailable("always down");
  });
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_EQ(attempts, 3);  // 1 initial + 2 retries.
  EXPECT_EQ(faas.stats().exhausted_retries.load(), 1u);
}

TEST(FaasTest, InjectedCrashesAreRetriedToSuccess) {
  SimClock clock;
  FaasOptions options = InstantFaas();
  options.crash_probability = 0.5;
  options.max_retries = 100;
  FaasPlatform faas(clock, options);
  int completions = 0;
  for (int i = 0; i < 50; ++i) {
    if (faas.Invoke([&](int) { return Status::Ok(); }).ok()) {
      ++completions;
    }
  }
  EXPECT_EQ(completions, 50);
  EXPECT_GT(faas.stats().crashes_injected.load(), 0u);
}

TEST(FaasTest, ConcurrencyLimitIsEnforced) {
  RealClock clock(1.0);
  FaasOptions options = InstantFaas();
  options.concurrency_limit = 2;
  FaasPlatform faas(clock, options);
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([&] {
      (void)faas.Invoke([&](int) {
        const int now = concurrent.fetch_add(1) + 1;
        int expected = max_concurrent.load();
        while (now > expected && !max_concurrent.compare_exchange_weak(expected, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        concurrent.fetch_sub(1);
        return Status::Ok();
      });
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_LE(max_concurrent.load(), 2);
  EXPECT_EQ(faas.stats().invocations.load(), 6u);
}

TEST(FaasTest, ColdStartsAreCountedAndCharged) {
  SimClock clock;
  FaasOptions options = InstantFaas();
  options.cold_start_probability = 1.0;
  options.cold_start = LatencyModel(100.0, 0.0, 100.0);
  FaasPlatform faas(clock, options);
  const TimePoint before = clock.Now();
  (void)faas.Invoke([](int) { return Status::Ok(); });
  EXPECT_GE(clock.Now() - before, Millis(100));
  EXPECT_EQ(faas.stats().cold_starts.load(), 1u);
}

}  // namespace
}  // namespace aft
