// AFT correctness across every supported storage engine, including with the
// engines' DEFAULT latency + staleness models (SimClock makes the latency
// free). AFT's guarantees must hold no matter how weak the engine is — its
// only assumption is durability (§3.1).

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>

#include "src/core/aft_node.h"
#include "src/storage/local_engine.h"
#include "src/storage/sim_dynamo.h"
#include "src/storage/sim_redis.h"
#include "src/storage/sim_s3.h"

namespace aft {
namespace {

enum class EngineKind { kS3, kDynamo, kRedis, kLocal };

std::unique_ptr<StorageEngine> MakeEngine(EngineKind kind, Clock& clock,
                                          std::string* local_dir) {
  switch (kind) {
    case EngineKind::kS3: {
      SimS3Options options;
      // Aggressive staleness: every read of an overwritten key is stale.
      options.staleness = StalenessModel{0.9, Millis(200)};
      return std::make_unique<SimS3>(clock, options);
    }
    case EngineKind::kDynamo: {
      SimDynamoOptions options;
      options.staleness = StalenessModel{0.9, Millis(100)};
      return std::make_unique<SimDynamo>(clock, options);
    }
    case EngineKind::kRedis:
      return std::make_unique<SimRedis>(clock);
    case EngineKind::kLocal: {
      // The durable engine runs against real files in a throwaway directory;
      // it ignores the simulated clock (real I/O has real latency).
      char tmpl[] = "/tmp/aft_matrix_XXXXXX";
      char* dir = ::mkdtemp(tmpl);
      EXPECT_NE(dir, nullptr);
      *local_dir = dir;
      auto engine = LocalEngine::Open(dir);
      EXPECT_TRUE(engine.ok()) << engine.status().ToString();
      return std::move(*engine);
    }
  }
  return nullptr;
}

class AftEngineMatrixTest : public ::testing::TestWithParam<EngineKind> {
 protected:
  AftEngineMatrixTest() : engine_(MakeEngine(GetParam(), clock_, &local_dir_)) {}
  ~AftEngineMatrixTest() override {
    engine_.reset();
    if (!local_dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(local_dir_, ec);
    }
  }

  std::unique_ptr<AftNode> MakeNode(const std::string& id) {
    auto node = std::make_unique<AftNode>(id, *engine_, clock_, AftNodeOptions{});
    EXPECT_TRUE(node->Start().ok());
    return node;
  }

  SimClock clock_;
  std::string local_dir_;
  std::unique_ptr<StorageEngine> engine_;
};

TEST_P(AftEngineMatrixTest, CommitReadBackRoundTrip) {
  auto node = MakeNode("n0");
  auto txid = node->StartTransaction();
  ASSERT_TRUE(node->Put(*txid, "k", "v").ok());
  ASSERT_TRUE(node->CommitTransaction(*txid).ok());
  auto reader = node->StartTransaction();
  EXPECT_EQ(node->Get(*reader, "k")->value(), "v");
}

TEST_P(AftEngineMatrixTest, OverwritesNeverGoBackwardsDespiteStaleness) {
  // AFT's key-per-version layout makes it immune to the engine's
  // eventually-consistent overwrite reads: each committed update gets a
  // fresh storage key that is never overwritten.
  auto node = MakeNode("n0");
  for (int i = 0; i < 30; ++i) {
    auto writer = node->StartTransaction();
    ASSERT_TRUE(node->Put(*writer, "hot", std::to_string(i)).ok());
    ASSERT_TRUE(node->CommitTransaction(*writer).ok());
    clock_.Advance(Millis(5));
    auto reader = node->StartTransaction();
    auto value = node->Get(*reader, "hot");
    ASSERT_TRUE(value.ok());
    ASSERT_TRUE(value->has_value());
    EXPECT_EQ(value->value(), std::to_string(i)) << "stale read leaked through AFT";
    (void)node->AbortTransaction(*reader);
  }
}

TEST_P(AftEngineMatrixTest, AtomicVisibilityOfMultiKeyCommits) {
  auto node = MakeNode("n0");
  // Writer thread-free deterministic check: start a reader that reads k
  // first, then commit {k,l}, then ensure the reader's subsequent l read is
  // consistent with its earlier k read.
  auto setup = node->StartTransaction();
  ASSERT_TRUE(node->Put(*setup, "k", "old-k").ok());
  ASSERT_TRUE(node->Put(*setup, "l", "old-l").ok());
  ASSERT_TRUE(node->CommitTransaction(*setup).ok());

  auto reader = node->StartTransaction();
  EXPECT_EQ(node->Get(*reader, "k")->value(), "old-k");

  auto update = node->StartTransaction();
  ASSERT_TRUE(node->Put(*update, "k", "new-k").ok());
  ASSERT_TRUE(node->Put(*update, "l", "new-l").ok());
  ASSERT_TRUE(node->CommitTransaction(*update).ok());

  // The reader saw old-k, which was cowritten with old-l: reading new-l now
  // would be a fractured read.
  EXPECT_EQ(node->Get(*reader, "l")->value(), "old-l");
  // A fresh reader sees the new pair, atomically.
  auto fresh = node->StartTransaction();
  EXPECT_EQ(node->Get(*fresh, "k")->value(), "new-k");
  EXPECT_EQ(node->Get(*fresh, "l")->value(), "new-l");
}

TEST_P(AftEngineMatrixTest, BootstrapRecoversAllCommits) {
  auto node = MakeNode("n0");
  for (int i = 0; i < 10; ++i) {
    auto txid = node->StartTransaction();
    ASSERT_TRUE(node->Put(*txid, "key" + std::to_string(i), "v" + std::to_string(i)).ok());
    ASSERT_TRUE(node->CommitTransaction(*txid).ok());
  }
  auto recovered = MakeNode("n1");
  for (int i = 0; i < 10; ++i) {
    auto reader = recovered->StartTransaction();
    auto value = recovered->Get(*reader, "key" + std::to_string(i));
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(value->value(), "v" + std::to_string(i));
    (void)recovered->AbortTransaction(*reader);
  }
}

TEST_P(AftEngineMatrixTest, LargeValuesSurviveSpillAndCommit) {
  auto node = [&] {
    AftNodeOptions options;
    options.spill_threshold_bytes = 1024;
    auto n = std::make_unique<AftNode>("spiller", *engine_, clock_, options);
    EXPECT_TRUE(n->Start().ok());
    return n;
  }();
  const std::string big(8192, 'z');
  auto txid = node->StartTransaction();
  ASSERT_TRUE(node->Put(*txid, "big0", big).ok());
  ASSERT_TRUE(node->Put(*txid, "big1", big).ok());
  ASSERT_TRUE(node->CommitTransaction(*txid).ok());
  auto reader = node->StartTransaction();
  EXPECT_EQ(node->Get(*reader, "big0")->value(), big);
  EXPECT_EQ(node->Get(*reader, "big1")->value(), big);
}

TEST_P(AftEngineMatrixTest, ManySmallTransactionsStaysConsistent) {
  auto node = MakeNode("n0");
  // Interleave two long-lived transactions with many one-shot committers.
  auto long_a = node->StartTransaction();
  ASSERT_TRUE(node->Get(*long_a, "x").ok());  // Pins the initial snapshot (NULL).
  for (int i = 0; i < 50; ++i) {
    auto t = node->StartTransaction();
    ASSERT_TRUE(node->Put(*t, "x", std::to_string(i)).ok());
    ASSERT_TRUE(node->Put(*t, "y", std::to_string(i)).ok());
    ASSERT_TRUE(node->CommitTransaction(*t).ok());
  }
  // A fresh transaction must see x == y (they are always cowritten).
  auto fresh = node->StartTransaction();
  auto x = node->Get(*fresh, "x");
  auto y = node->Get(*fresh, "y");
  ASSERT_TRUE(x.ok());
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(x->value(), y->value());
}

INSTANTIATE_TEST_SUITE_P(AllEngines, AftEngineMatrixTest,
                         ::testing::Values(EngineKind::kS3, EngineKind::kDynamo,
                                           EngineKind::kRedis, EngineKind::kLocal),
                         [](const ::testing::TestParamInfo<EngineKind>& param_info) {
                           switch (param_info.param) {
                             case EngineKind::kS3:
                               return "S3";
                             case EngineKind::kDynamo:
                               return "Dynamo";
                             case EngineKind::kRedis:
                               return "Redis";
                             case EngineKind::kLocal:
                               return "Local";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace aft
