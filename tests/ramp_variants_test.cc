// Tests for the Bloom filter and the RAMP-Small / RAMP-Hybrid variants.

#include <gtest/gtest.h>

#include <thread>

#include "src/common/bloom.h"
#include "src/ramp/ramp_client.h"

namespace aft {
namespace {

RampStoreOptions InstantRamp() {
  RampStoreOptions options;
  options.op_latency = LatencyModel::Zero();
  // Zero-latency concurrency tests can burn through many versions between a
  // reader's two rounds; keep enough history that exact-timestamp fetches
  // never miss due to pruning.
  options.max_versions_per_key = 1 << 20;
  return options;
}

// ---- BloomFilter ------------------------------------------------------------------

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(512, 4);
  for (int i = 0; i < 40; ++i) {
    filter.Add("key" + std::to_string(i));
  }
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(filter.MightContain("key" + std::to_string(i)));
  }
}

TEST(BloomFilterTest, FalsePositiveRateIsReasonable) {
  BloomFilter filter(1024, 4);
  for (int i = 0; i < 50; ++i) {
    filter.Add("present" + std::to_string(i));
  }
  int false_positives = 0;
  constexpr int kProbes = 2000;
  for (int i = 0; i < kProbes; ++i) {
    if (filter.MightContain("absent" + std::to_string(i))) {
      ++false_positives;
    }
  }
  // Analytic rate for m=1024, k=4, n=50 is ~0.1%; allow generous slack.
  EXPECT_LT(static_cast<double>(false_positives) / kProbes, 0.05);
  EXPECT_LT(filter.EstimatedFalsePositiveRate(50), 0.01);
}

TEST(BloomFilterTest, SerializeRoundTrips) {
  BloomFilter filter(256, 3);
  filter.Add("alpha");
  filter.Add("beta");
  bool ok = false;
  BloomFilter decoded = BloomFilter::Deserialize(filter.Serialize(), &ok);
  ASSERT_TRUE(ok);
  EXPECT_TRUE(decoded.MightContain("alpha"));
  EXPECT_TRUE(decoded.MightContain("beta"));
  EXPECT_EQ(decoded.hash_count(), 3);
  EXPECT_EQ(decoded.bit_count(), 256u);
}

TEST(BloomFilterTest, DeserializeRejectsGarbage) {
  bool ok = true;
  (void)BloomFilter::Deserialize("garbage", &ok);
  EXPECT_FALSE(ok);
}

TEST(BloomFilterTest, EmptyFilterContainsNothing) {
  BloomFilter filter;
  EXPECT_FALSE(filter.MightContain("anything"));
}

// ---- RAMP store timestamp-set reads --------------------------------------------------

TEST(RampStoreTest, GetByTimestampSetPicksNewestMatch) {
  SimClock clock;
  RampStore store(clock, InstantRamp());
  for (int64_t ts : {10, 20, 30}) {
    ASSERT_TRUE(store.Prepare(RampVersion{ts, {}, "", "v" + std::to_string(ts)}, "k").ok());
  }
  auto version = store.GetByTimestampSet("k", {10, 20, 999});
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(version->value, "v20");
  // No timestamps match: bottom.
  EXPECT_TRUE(store.GetByTimestampSet("k", {77})->IsBottom());
  EXPECT_TRUE(store.GetByTimestampSet("missing", {10})->IsBottom());
}

// ---- RAMP-Small / RAMP-Hybrid correctness (shared across variants) ---------------------

template <typename ClientT>
class RampVariantTest : public ::testing::Test {
 protected:
  RampVariantTest() : store_(clock_, InstantRamp()), client_(store_) {}

  SimClock clock_;
  RampStore store_;
  ClientT client_;
};

using Variants = ::testing::Types<RampSmallClient, RampHybridClient>;
TYPED_TEST_SUITE(RampVariantTest, Variants);

TYPED_TEST(RampVariantTest, WriteThenReadRoundTrips) {
  ASSERT_TRUE(this->client_.WriteTransaction({{"x", "1"}, {"y", "2"}}).ok());
  auto result = this->client_.ReadTransaction({"x", "y"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0].value, "1");
  EXPECT_EQ((*result)[1].value, "2");
}

TYPED_TEST(RampVariantTest, ReadSetIsAtomicAfterOverwrites) {
  ASSERT_TRUE(this->client_.WriteTransaction({{"x", "a1"}, {"y", "a1"}}).ok());
  ASSERT_TRUE(this->client_.WriteTransaction({{"x", "a2"}, {"y", "a2"}}).ok());
  auto result = this->client_.ReadTransaction({"x", "y"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0].value, (*result)[1].value);
}

TYPED_TEST(RampVariantTest, RepairsAcrossPartialCommit) {
  ASSERT_TRUE(this->client_.WriteTransaction({{"x", "old"}, {"y", "old"}}).ok());
  // A writer committed x but not yet y (same mechanics as the Fast test,
  // but metadata is variant-specific, so build it through the client).
  const int64_t ts = NextRampTimestamp();
  // Build variant metadata by writing through a scratch one-key txn to learn
  // nothing — instead craft versions manually with both metadata kinds set,
  // which every variant tolerates.
  BloomFilter filter(256, 4);
  filter.Add("x");
  filter.Add("y");
  RampVersion vx{ts, {"x", "y"}, filter.Serialize(), "new"};
  RampVersion vy{ts, {"x", "y"}, filter.Serialize(), "new"};
  ASSERT_TRUE(this->store_.Prepare(vx, "x").ok());
  ASSERT_TRUE(this->store_.Prepare(vy, "y").ok());
  ASSERT_TRUE(this->store_.Commit("x", ts).ok());
  // y's commit is still in flight.
  auto result = this->client_.ReadTransaction({"x", "y"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0].value, "new");
  EXPECT_EQ((*result)[1].value, "new") << "round 2 must repair y forward";
}

TYPED_TEST(RampVariantTest, ConcurrentWritersNeverFractureReaders) {
  ASSERT_TRUE(this->client_.WriteTransaction({{"x", "0"}, {"y", "0"}}).ok());
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 1;
    while (!stop.load()) {
      (void)this->client_.WriteTransaction(
          {{"x", std::to_string(i)}, {"y", std::to_string(i)}});
      ++i;
    }
  });
  for (int i = 0; i < 300; ++i) {
    auto result = this->client_.ReadTransaction({"x", "y"});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ((*result)[0].value, (*result)[1].value) << "fractured read";
  }
  stop.store(true);
  writer.join();
}

// ---- Variant-specific behaviour ---------------------------------------------------------

TEST(RampSmallTest, AlwaysTwoRounds) {
  SimClock clock;
  RampStoreOptions options;
  options.op_latency = LatencyModel(5.0, 0.0, 5.0);
  RampStore store(clock, options);
  RampSmallClient client(store);
  ASSERT_TRUE(client.WriteTransaction({{"a", "1"}, {"b", "2"}}).ok());
  const TimePoint before = clock.Now();
  ASSERT_TRUE(client.ReadTransaction({"a", "b"}).ok());
  EXPECT_EQ(clock.Now() - before, Millis(10)) << "RAMP-Small reads are always 2 rounds";
}

TEST(RampHybridTest, DisjointKeysUsuallyOneRound) {
  SimClock clock;
  RampStore store(clock, InstantRamp());
  RampHybridClient client(store, /*bloom_bits=*/1024, /*bloom_hashes=*/4);
  ASSERT_TRUE(client.WriteTransaction({{"a", "1"}}).ok());
  ASSERT_TRUE(client.WriteTransaction({{"b", "2"}}).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client.ReadTransaction({"a", "b"}).ok());
  }
  // With disjoint single-key writers and a roomy filter, second rounds are
  // (almost always) skipped — allow a few false positives.
  EXPECT_LT(client.stats().second_round_fetches.load(), 10u);
}

TEST(RampSmallTest, VersionsCarryNoMetadata) {
  SimClock clock;
  RampStore store(clock, InstantRamp());
  RampSmallClient client(store);
  ASSERT_TRUE(client.WriteTransaction({{"k", "v"}}).ok());
  auto version = store.GetLatest("k");
  ASSERT_TRUE(version.ok());
  EXPECT_TRUE(version->write_set.empty());
  EXPECT_TRUE(version->bloom.empty());
}

TEST(RampHybridTest, VersionsCarryBloomNotKeyList) {
  SimClock clock;
  RampStore store(clock, InstantRamp());
  RampHybridClient client(store);
  ASSERT_TRUE(client.WriteTransaction({{"k", "v"}, {"l", "w"}}).ok());
  auto version = store.GetLatest("k");
  ASSERT_TRUE(version.ok());
  EXPECT_TRUE(version->write_set.empty());
  ASSERT_FALSE(version->bloom.empty());
  bool ok = false;
  BloomFilter filter = BloomFilter::Deserialize(version->bloom, &ok);
  ASSERT_TRUE(ok);
  EXPECT_TRUE(filter.MightContain("k"));
  EXPECT_TRUE(filter.MightContain("l"));
}

}  // namespace
}  // namespace aft
