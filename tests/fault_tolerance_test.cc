// Fault-tolerance property tests: crash injection at every point of the
// commit protocol, recovery invariants, orphan collection, and end-to-end
// exactly-once behaviour under randomized failures.

#include <gtest/gtest.h>

#include "src/cluster/deployment.h"
#include "src/storage/sim_dynamo.h"
#include "src/workload/dataset.h"
#include "src/workload/harness.h"

namespace aft {
namespace {

SimDynamoOptions InstantDynamo() {
  SimDynamoOptions options;
  options.profile = EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero()};
  options.staleness = StalenessModel{};
  options.txn_call = LatencyModel::Zero();
  return options;
}

// Randomized crash-point property: for every transaction, either ALL of its
// writes are visible after recovery or NONE are, and acked commits are
// always visible. Parameterized over RNG seeds.
class CrashRecoveryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CrashRecoveryPropertyTest, AckedAllOrNothingAlwaysHolds) {
  SimClock clock;
  SimDynamo storage(clock, InstantDynamo());
  Rng rng(9000 + GetParam());

  struct Outcome {
    std::string key_a;
    std::string key_b;
    std::string value;
    bool acked = false;
    bool commit_record_persisted = false;
  };
  std::vector<Outcome> outcomes;

  for (int i = 0; i < 40; ++i) {
    // Each iteration: a fresh node (previous one may have crashed) running
    // one 2-key transaction with a randomly armed crash point.
    const int crash_roll = static_cast<int>(rng.Below(4));  // 3 points + no crash.
    AftNodeOptions options;
    options.service_cores = 0;
    options.crash_hook = [crash_roll](CrashPoint point) {
      return static_cast<int>(point) == crash_roll;
    };
    AftNode node("n" + std::to_string(i), storage, clock, options);
    ASSERT_TRUE(node.Start().ok());

    Outcome outcome;
    outcome.key_a = "a" + std::to_string(i);
    outcome.key_b = "b" + std::to_string(i);
    outcome.value = "v" + std::to_string(i);
    auto txid = node.StartTransaction();
    ASSERT_TRUE(txid.ok());
    ASSERT_TRUE(node.Put(*txid, outcome.key_a, outcome.value).ok());
    ASSERT_TRUE(node.Put(*txid, outcome.key_b, outcome.value).ok());
    auto committed = node.CommitTransaction(*txid);
    outcome.acked = committed.ok();
    // Ground truth from storage: did the commit record make it out?
    auto commit_keys = storage.List(kCommitPrefix);
    ASSERT_TRUE(commit_keys.ok());
    outcome.commit_record_persisted = false;
    for (const auto& key : commit_keys.value()) {
      if (TxnIdFromCommitStorageKey(key).uuid == *txid) {
        outcome.commit_record_persisted = true;
        break;
      }
    }
    outcomes.push_back(outcome);
  }

  // Recovery: a brand-new node bootstraps purely from storage.
  AftNodeOptions recovery_options;
  recovery_options.service_cores = 0;
  AftNode recovered("recovery", storage, clock, recovery_options);
  ASSERT_TRUE(recovered.Start().ok());

  for (const Outcome& outcome : outcomes) {
    auto txid = recovered.StartTransaction();
    ASSERT_TRUE(txid.ok());
    auto a = recovered.Get(*txid, outcome.key_a);
    auto b = recovered.Get(*txid, outcome.key_b);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    (void)recovered.AbortTransaction(*txid);

    const bool a_visible = a->has_value();
    const bool b_visible = b->has_value();
    EXPECT_EQ(a_visible, b_visible) << "fractional execution exposed for " << outcome.key_a;
    if (outcome.acked) {
      EXPECT_TRUE(a_visible) << "acked commit lost: " << outcome.key_a;
      EXPECT_EQ(a->value(), outcome.value);
    }
    // Commit record persisted == transaction committed, acked or not (§3.3.1).
    EXPECT_EQ(a_visible, outcome.commit_record_persisted);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRecoveryPropertyTest, ::testing::Range(0, 6));

// ---- Orphan collection ------------------------------------------------------------

TEST(OrphanSweepTest, OrphanedVersionsAreReapedAfterGrace) {
  SimClock clock;
  SimDynamo storage(clock, InstantDynamo());
  ClusterOptions options;
  options.num_nodes = 1;
  options.start_background_threads = false;
  options.fault_manager.orphan_grace = Millis(500);
  // The dying node: crashes after writing data, before the commit record.
  options.node_options.crash_hook = [](CrashPoint point) {
    return point == CrashPoint::kAfterDataWrite;
  };
  ClusterDeployment cluster(storage, clock, options);
  ASSERT_TRUE(cluster.Start().ok());

  auto txid = cluster.node(0)->StartTransaction();
  ASSERT_TRUE(cluster.node(0)->Put(*txid, "torn", "x").ok());
  EXPECT_TRUE(cluster.node(0)->CommitTransaction(*txid).status().IsUnavailable());
  ASSERT_EQ(storage.List(kVersionPrefix)->size(), 1u);

  // First sweep: candidate noted, nothing deleted (grace not elapsed).
  EXPECT_EQ(cluster.fault_manager().RunOrphanSweepOnce(), 0u);
  clock.Advance(Millis(1000));
  // After the grace period the orphan is reaped.
  EXPECT_EQ(cluster.fault_manager().RunOrphanSweepOnce(), 1u);
  EXPECT_TRUE(storage.List(kVersionPrefix)->empty());
  EXPECT_EQ(cluster.fault_manager().stats().orphans_deleted.load(), 1u);
}

TEST(OrphanSweepTest, CommittedVersionsAreNeverReaped) {
  SimClock clock;
  SimDynamo storage(clock, InstantDynamo());
  ClusterOptions options;
  options.num_nodes = 1;
  options.start_background_threads = false;
  options.fault_manager.orphan_grace = Millis(1);
  ClusterDeployment cluster(storage, clock, options);
  ASSERT_TRUE(cluster.Start().ok());

  auto txid = cluster.node(0)->StartTransaction();
  ASSERT_TRUE(cluster.node(0)->Put(*txid, "safe", "x").ok());
  ASSERT_TRUE(cluster.node(0)->CommitTransaction(*txid).ok());
  cluster.bus().RunOnce();  // Fault manager learns the commit.
  clock.Advance(Millis(100));
  EXPECT_EQ(cluster.fault_manager().RunOrphanSweepOnce(), 0u);
  EXPECT_EQ(storage.List(kVersionPrefix)->size(), 1u);
}

TEST(OrphanSweepTest, UncommittedButRecentVersionsSurviveViaGrace) {
  // A slow transaction's spilled buffer must not be reaped mid-flight.
  SimClock clock;
  SimDynamo storage(clock, InstantDynamo());
  ClusterOptions options;
  options.num_nodes = 1;
  options.start_background_threads = false;
  options.fault_manager.orphan_grace = Millis(10000);
  options.node_options.spill_threshold_bytes = 8;
  ClusterDeployment cluster(storage, clock, options);
  ASSERT_TRUE(cluster.Start().ok());

  auto txid = cluster.node(0)->StartTransaction();
  ASSERT_TRUE(cluster.node(0)->Put(*txid, "slow", "spilled-payload").ok());
  ASSERT_EQ(storage.List(kVersionPrefix)->size(), 1u);  // Spilled pre-commit.
  EXPECT_EQ(cluster.fault_manager().RunOrphanSweepOnce(), 0u);
  clock.Advance(Millis(100));
  EXPECT_EQ(cluster.fault_manager().RunOrphanSweepOnce(), 0u);
  // The transaction eventually commits; its data must still be there.
  ASSERT_TRUE(cluster.node(0)->CommitTransaction(*txid).ok());
  auto reader = cluster.node(0)->StartTransaction();
  EXPECT_EQ(cluster.node(0)->Get(*reader, "slow")->value(), "spilled-payload");
}

// ---- End-to-end exactly-once under randomized failures -----------------------------

class CrashyFaasStressTest : public ::testing::TestWithParam<bool> {};

TEST_P(CrashyFaasStressTest, StillYieldsZeroAnomalies) {
  const bool packed_layout = GetParam();
  RealClock clock(0.002);  // 500x real time; everything below is zero-latency.
  SimDynamo storage(clock, InstantDynamo());
  WorkloadSpec spec;
  spec.num_keys = 40;
  spec.zipf_theta = 1.2;
  spec.value_bytes = 64;
  (void)LoadAftDataset(storage, spec);

  ClusterOptions cluster_options;
  cluster_options.num_nodes = 3;
  cluster_options.multicast_interval = Millis(50);
  cluster_options.start_background_threads = true;
  cluster_options.node_options.service_cores = 0;
  cluster_options.node_options.enable_background_threads = true;
  cluster_options.node_options.local_gc_interval = Millis(50);
  cluster_options.node_options.packed_layout = packed_layout;
  cluster_options.fault_manager.gc_interval = Millis(50);
  cluster_options.fault_manager.scan_interval = Millis(100);
  ClusterDeployment cluster(storage, clock, cluster_options);
  ASSERT_TRUE(cluster.Start().ok());

  FaasOptions faas_options;
  faas_options.invocation_overhead = LatencyModel(1.0, 0.1, 0.5);
  faas_options.crash_probability = 0.1;
  faas_options.max_retries = 20;
  faas_options.retry_backoff = Millis(1);
  FaasPlatform faas(clock, faas_options);
  AftClientOptions client_options;
  client_options.network_hop = LatencyModel(0.2, 0.1, 0.1);
  AftClient client(cluster.balancer(), clock, client_options);
  TxnPlanGenerator plans(spec);
  AftRequestRunner runner(faas, client, clock, plans);

  HarnessOptions harness;
  harness.num_clients = 6;
  harness.requests_per_client = 40;
  const HarnessResult result = RunClients(clock, runner, harness);
  cluster.Stop();

  EXPECT_EQ(result.completed, 240u);
  EXPECT_EQ(result.ryw_anomalies, 0u);
  EXPECT_EQ(result.fr_anomalies, 0u);
  EXPECT_GT(faas.stats().crashes_injected.load(), 0u);
  // Gossip + GC actually ran.
  EXPECT_GT(cluster.bus().stats().rounds.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Layouts, CrashyFaasStressTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "PackedLayout" : "KeyPerVersion";
                         });

// Flaky STORAGE: every engine op can fail transiently (throttling / 500s).
// The retry stack — storage-read retries in the node, FaaS function retries,
// whole-request retries in the runner — must absorb them with zero anomalies.
TEST(ExactlyOnceStressTest, TransientStorageFaultsAreAbsorbed) {
  RealClock clock(0.002);
  SimDynamo storage(clock, InstantDynamo());
  WorkloadSpec spec;
  spec.num_keys = 40;
  spec.zipf_theta = 1.0;
  spec.value_bytes = 64;
  (void)LoadAftDataset(storage, spec);
  storage.InjectTransientFaults(0.05);  // 5% of ALL storage ops fail.

  ClusterOptions cluster_options;
  cluster_options.num_nodes = 2;
  cluster_options.multicast_interval = Millis(50);
  cluster_options.start_background_threads = true;
  cluster_options.node_options.service_cores = 0;
  ClusterDeployment cluster(storage, clock, cluster_options);
  ASSERT_TRUE(cluster.Start().ok());

  FaasOptions faas_options;
  faas_options.invocation_overhead = LatencyModel(1.0, 0.1, 0.5);
  faas_options.max_retries = 20;
  faas_options.retry_backoff = Millis(1);
  FaasPlatform faas(clock, faas_options);
  AftClientOptions client_options;
  client_options.network_hop = LatencyModel(0.2, 0.1, 0.1);
  AftClient client(cluster.balancer(), clock, client_options);
  TxnPlanGenerator plans(spec);
  RunnerRetryPolicy retry;
  retry.max_request_retries = 64;
  retry.retry_backoff = Millis(1);
  AftRequestRunner runner(faas, client, clock, plans, retry);

  HarnessOptions harness;
  harness.num_clients = 4;
  harness.requests_per_client = 40;
  const HarnessResult result = RunClients(clock, runner, harness);
  cluster.Stop();

  EXPECT_EQ(result.completed, 160u);
  EXPECT_EQ(result.ryw_anomalies, 0u);
  EXPECT_EQ(result.fr_anomalies, 0u);
  EXPECT_GT(storage.counters().transient_faults.load(), 0u);
}

// Kill a node DURING a multi-client run: every request still completes (via
// failover) and no anomaly ever surfaces.
TEST(ExactlyOnceStressTest, NodeDeathMidRunIsInvisibleToCorrectness) {
  RealClock clock(0.002);
  SimDynamo storage(clock, InstantDynamo());
  WorkloadSpec spec;
  spec.num_keys = 40;
  spec.zipf_theta = 1.0;
  spec.value_bytes = 64;
  (void)LoadAftDataset(storage, spec);

  ClusterOptions cluster_options;
  cluster_options.num_nodes = 3;
  cluster_options.multicast_interval = Millis(50);
  cluster_options.start_background_threads = true;
  cluster_options.node_options.service_cores = 0;
  cluster_options.fault_manager.enable_node_replacement = false;
  ClusterDeployment cluster(storage, clock, cluster_options);
  ASSERT_TRUE(cluster.Start().ok());

  FaasOptions faas_options;
  faas_options.invocation_overhead = LatencyModel(1.0, 0.1, 0.5);
  FaasPlatform faas(clock, faas_options);
  AftClientOptions client_options;
  client_options.network_hop = LatencyModel(0.2, 0.1, 0.1);
  AftClient client(cluster.balancer(), clock, client_options);
  TxnPlanGenerator plans(spec);
  AftRequestRunner runner(faas, client, clock, plans);

  std::thread assassin([&] {
    clock.SleepFor(Millis(300));
    cluster.KillNode(0);
  });
  HarnessOptions harness;
  harness.num_clients = 6;
  harness.requests_per_client = 50;
  const HarnessResult result = RunClients(clock, runner, harness);
  assassin.join();
  cluster.Stop();

  EXPECT_EQ(result.completed + result.failed, 300u);
  EXPECT_EQ(result.failed, 0u) << "whole-request retries must absorb the node death";
  EXPECT_EQ(result.ryw_anomalies, 0u);
  EXPECT_EQ(result.fr_anomalies, 0u);
}

}  // namespace
}  // namespace aft
