// Integration tests for the cluster layer: load balancing, commit multicast,
// fault-manager liveness, global GC, and node failure/replacement.

#include <gtest/gtest.h>

#include "src/cluster/aft_client.h"
#include "src/cluster/deployment.h"
#include "src/storage/sim_dynamo.h"

namespace aft {
namespace {

SimDynamoOptions InstantDynamo() {
  SimDynamoOptions options;
  options.profile = EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero()};
  options.staleness = StalenessModel{};
  options.txn_call = LatencyModel::Zero();
  return options;
}

ClusterOptions ManualCluster(size_t nodes) {
  ClusterOptions options;
  options.num_nodes = nodes;
  options.start_background_threads = false;  // Tests drive rounds manually.
  options.fault_manager.failure_detection_delay = Millis(10);
  options.fault_manager.container_download_time = Millis(50);
  return options;
}

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : storage_(clock_, InstantDynamo()) {}

  TxnId CommitVia(AftNode& node, const std::string& key, const std::string& value) {
    auto txid = node.StartTransaction();
    EXPECT_TRUE(txid.ok());
    EXPECT_TRUE(node.Put(*txid, key, value).ok());
    auto committed = node.CommitTransaction(*txid);
    EXPECT_TRUE(committed.ok());
    return committed.ok() ? *committed : TxnId();
  }

  std::optional<std::string> ReadVia(AftNode& node, const std::string& key) {
    auto txid = node.StartTransaction();
    auto result = node.Get(*txid, key);
    EXPECT_TRUE(result.ok());
    (void)node.AbortTransaction(*txid);
    return result.ok() ? *result : std::nullopt;
  }

  SimClock clock_;
  SimDynamo storage_;
};

// ---- LoadBalancer -----------------------------------------------------------------

TEST_F(ClusterTest, LoadBalancerRoundRobinsAcrossNodes) {
  ClusterDeployment cluster(storage_, clock_, ManualCluster(3));
  ASSERT_TRUE(cluster.Start().ok());
  std::map<AftNode*, int> picks;
  for (int i = 0; i < 30; ++i) {
    ++picks[cluster.balancer().Pick()];
  }
  EXPECT_EQ(picks.size(), 3u);
  for (const auto& [node, count] : picks) {
    EXPECT_EQ(count, 10);
  }
}

TEST_F(ClusterTest, LoadBalancerSkipsDeadNodes) {
  ClusterDeployment cluster(storage_, clock_, ManualCluster(2));
  ASSERT_TRUE(cluster.Start().ok());
  cluster.KillNode(0);
  for (int i = 0; i < 10; ++i) {
    AftNode* picked = cluster.balancer().Pick();
    ASSERT_NE(picked, nullptr);
    EXPECT_TRUE(picked->alive());
  }
}

TEST_F(ClusterTest, LoadBalancerEmptyReturnsNull) {
  LoadBalancer balancer;
  EXPECT_EQ(balancer.Pick(), nullptr);
}

// ---- Multicast -----------------------------------------------------------------------

TEST_F(ClusterTest, CommitsPropagateViaGossip) {
  ClusterDeployment cluster(storage_, clock_, ManualCluster(3));
  ASSERT_TRUE(cluster.Start().ok());
  CommitVia(*cluster.node(0), "k", "gossip");
  EXPECT_FALSE(ReadVia(*cluster.node(1), "k").has_value());
  cluster.bus().RunOnce();
  EXPECT_EQ(ReadVia(*cluster.node(1), "k").value(), "gossip");
  EXPECT_EQ(ReadVia(*cluster.node(2), "k").value(), "gossip");
}

TEST_F(ClusterTest, GossipPrunesSupersededRecords) {
  ClusterDeployment cluster(storage_, clock_, ManualCluster(2));
  ASSERT_TRUE(cluster.Start().ok());
  CommitVia(*cluster.node(0), "k", "old");
  CommitVia(*cluster.node(0), "k", "new");
  cluster.bus().RunOnce();
  // Only the superseding record was broadcast; the fault manager saw both.
  EXPECT_EQ(cluster.bus().stats().records_broadcast.load(), 1u);
  EXPECT_EQ(cluster.bus().stats().records_pruned.load(), 1u);
  EXPECT_EQ(cluster.bus().stats().records_to_fault_manager.load(), 2u);
  EXPECT_EQ(ReadVia(*cluster.node(1), "k").value(), "new");
}

TEST_F(ClusterTest, PruningCanBeDisabled) {
  ClusterDeployment cluster(storage_, clock_, ManualCluster(2));
  ASSERT_TRUE(cluster.Start().ok());
  cluster.bus().set_pruning_enabled(false);
  CommitVia(*cluster.node(0), "k", "old");
  CommitVia(*cluster.node(0), "k", "new");
  cluster.bus().RunOnce();
  EXPECT_EQ(cluster.bus().stats().records_broadcast.load(), 2u);
  EXPECT_EQ(cluster.bus().stats().records_pruned.load(), 0u);
}

// ---- Client sessions --------------------------------------------------------------------

TEST_F(ClusterTest, ClientSessionsStickToOneNode) {
  ClusterDeployment cluster(storage_, clock_, ManualCluster(3));
  ASSERT_TRUE(cluster.Start().ok());
  AftClientOptions client_options;
  client_options.network_hop = LatencyModel::Zero();
  AftClient client(cluster.balancer(), clock_, client_options);

  auto session = client.StartTransaction();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(client.Put(*session, "a", "1").ok());
  ASSERT_TRUE(client.Put(*session, "b", "2").ok());
  // Read-your-writes works regardless of which node the balancer picked.
  EXPECT_EQ(client.Get(*session, "a")->value(), "1");
  ASSERT_TRUE(client.Commit(*session).ok());
}

TEST_F(ClusterTest, ClientFailsOverAfterNodeDeath) {
  ClusterDeployment cluster(storage_, clock_, ManualCluster(2));
  ASSERT_TRUE(cluster.Start().ok());
  AftClientOptions client_options;
  client_options.network_hop = LatencyModel::Zero();
  AftClient client(cluster.balancer(), clock_, client_options);

  auto session = client.StartTransaction();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(client.Put(*session, "k", "doomed").ok());
  session->node->Kill();
  // Mid-transaction node death: operations fail, the client must redo the
  // whole transaction (§3.3.1) on a surviving node.
  EXPECT_TRUE(client.Put(*session, "k", "again").IsUnavailable());
  auto retry = client.StartTransaction();
  ASSERT_TRUE(retry.ok());
  EXPECT_NE(retry->node, session->node);
  ASSERT_TRUE(client.Put(*retry, "k", "survived").ok());
  ASSERT_TRUE(client.Commit(*retry).ok());
}

// ---- Fault manager: liveness -----------------------------------------------------------

TEST_F(ClusterTest, LivenessScanRecoversUnbroadcastCommits) {
  ClusterDeployment cluster(storage_, clock_, ManualCluster(2));
  ASSERT_TRUE(cluster.Start().ok());
  // Node 0 commits and ACKs the client, then dies BEFORE the gossip round.
  CommitVia(*cluster.node(0), "k", "acked");
  cluster.KillNode(0);
  cluster.bus().RunOnce();  // Dead node is not drained.
  EXPECT_FALSE(ReadVia(*cluster.node(1), "k").has_value());

  // The fault manager's storage scan finds the orphaned commit record and
  // notifies the survivors — the acked data is never lost (§4.2). Fresh
  // commits are under the liveness grace window, so advance past it first.
  clock_.Advance(std::chrono::seconds(5));
  EXPECT_EQ(cluster.fault_manager().RunLivenessScanOnce(), 1u);
  EXPECT_EQ(ReadVia(*cluster.node(1), "k").value(), "acked");
}

TEST_F(ClusterTest, LivenessScanIsIdempotent) {
  ClusterDeployment cluster(storage_, clock_, ManualCluster(2));
  ASSERT_TRUE(cluster.Start().ok());
  CommitVia(*cluster.node(0), "k", "v");
  cluster.bus().RunOnce();
  const size_t first = cluster.fault_manager().RunLivenessScanOnce();
  EXPECT_EQ(cluster.fault_manager().RunLivenessScanOnce(), 0u);
  (void)first;
}

// ---- Fault manager: global GC ------------------------------------------------------------

TEST_F(ClusterTest, GlobalGcDeletesSupersededDataEverywhere) {
  ClusterDeployment cluster(storage_, clock_, ManualCluster(2));
  ASSERT_TRUE(cluster.Start().ok());
  const TxnId old_id = CommitVia(*cluster.node(0), "k", "old");
  CommitVia(*cluster.node(0), "k", "new");
  cluster.bus().RunOnce();  // Fault manager ingests both records.

  // Before local GC has run anywhere, the global GC must hold off.
  EXPECT_EQ(cluster.fault_manager().RunGlobalGcOnce(), 0u);

  // All nodes drop the superseded record locally...
  (void)cluster.node(0)->RunLocalGcOnce();
  (void)cluster.node(1)->RunLocalGcOnce();
  EXPECT_TRUE(cluster.node(0)->HasLocallyDeleted(old_id));

  // ...then the global GC deletes the data and commit record from storage.
  EXPECT_EQ(cluster.fault_manager().RunGlobalGcOnce(), 1u);
  cluster.fault_manager().Stop();  // Flush the deletion pool.
  EXPECT_TRUE(storage_.Get(CommitStorageKey(old_id)).status().IsNotFound());
  EXPECT_TRUE(
      storage_.Get(VersionStorageKey("k", old_id.uuid)).status().IsNotFound());
  // The tombstone bookkeeping was acknowledged and cleared.
  EXPECT_FALSE(cluster.node(0)->HasLocallyDeleted(old_id));
  // The surviving version still reads fine on both nodes.
  EXPECT_EQ(ReadVia(*cluster.node(0), "k").value(), "new");
  EXPECT_EQ(ReadVia(*cluster.node(1), "k").value(), "new");
}

TEST_F(ClusterTest, GlobalGcBlockedWhileAnyNodeStillCachesRecord) {
  ClusterDeployment cluster(storage_, clock_, ManualCluster(2));
  ASSERT_TRUE(cluster.Start().ok());
  // Disable pruning so node 1 actually caches the superseded record.
  cluster.bus().set_pruning_enabled(false);
  CommitVia(*cluster.node(0), "k", "old");
  CommitVia(*cluster.node(0), "k", "new");
  cluster.bus().RunOnce();
  (void)cluster.node(0)->RunLocalGcOnce();
  // Node 1 has NOT run local GC: it still caches the superseded record.
  EXPECT_EQ(cluster.fault_manager().RunGlobalGcOnce(), 0u);
  // Once node 1 drops it too, the deletion can proceed.
  (void)cluster.node(1)->RunLocalGcOnce();
  EXPECT_EQ(cluster.fault_manager().RunGlobalGcOnce(), 1u);
}

TEST_F(ClusterTest, GlobalGcCanBeDisabled) {
  ClusterOptions options = ManualCluster(1);
  options.fault_manager.enable_global_gc = false;
  ClusterDeployment cluster(storage_, clock_, options);
  ASSERT_TRUE(cluster.Start().ok());
  CommitVia(*cluster.node(0), "k", "old");
  CommitVia(*cluster.node(0), "k", "new");
  cluster.bus().RunOnce();
  (void)cluster.node(0)->RunLocalGcOnce();
  EXPECT_EQ(cluster.fault_manager().RunGlobalGcOnce(), 0u);
}

// ---- Fault manager: failure detection & replacement ----------------------------------------

TEST_F(ClusterTest, FailedNodeIsReplacedAndBootstraps) {
  ClusterOptions options = ManualCluster(2);
  ClusterDeployment cluster(storage_, clock_, options);
  ASSERT_TRUE(cluster.Start().ok());
  CommitVia(*cluster.node(0), "k", "precious");
  cluster.bus().RunOnce();

  cluster.KillNode(0);
  cluster.fault_manager().CheckForFailuresOnce();
  // Join the replacement thread (sleeps pass instantly on the sim clock).
  cluster.fault_manager().Stop();

  EXPECT_EQ(cluster.fault_manager().stats().failures_detected.load(), 1u);
  EXPECT_EQ(cluster.fault_manager().stats().nodes_replaced.load(), 1u);
  ASSERT_EQ(cluster.node_count(), 3u);
  AftNode* replacement = cluster.node(2);
  ASSERT_NE(replacement, nullptr);
  EXPECT_TRUE(replacement->alive());
  // The replacement bootstrapped from the commit set: it serves the data.
  EXPECT_EQ(ReadVia(*replacement, "k").value(), "precious");
  // And the balancer routes to it.
  std::set<AftNode*> picked;
  for (int i = 0; i < 10; ++i) {
    picked.insert(cluster.balancer().Pick());
  }
  EXPECT_TRUE(picked.contains(replacement));
}

TEST_F(ClusterTest, FailureHandledOnlyOnce) {
  ClusterDeployment cluster(storage_, clock_, ManualCluster(2));
  ASSERT_TRUE(cluster.Start().ok());
  cluster.KillNode(0);
  cluster.fault_manager().CheckForFailuresOnce();
  cluster.fault_manager().CheckForFailuresOnce();
  cluster.fault_manager().Stop();
  EXPECT_EQ(cluster.fault_manager().stats().failures_detected.load(), 1u);
  EXPECT_EQ(cluster.fault_manager().stats().nodes_replaced.load(), 1u);
}

// ---- Transport parity: in-proc vs loopback TCP ------------------------------------------------
//
// The same protocol tests run under both transports: the gossip/recovery
// logic must not care whether records move by method call or over a real
// socket (src/net).

class ClusterTransportTest : public ClusterTest,
                             public ::testing::WithParamInterface<ClusterTransport> {
 protected:
  ClusterOptions Manual(size_t nodes) {
    ClusterOptions options = ManualCluster(nodes);
    options.transport = GetParam();
    return options;
  }
};

TEST_P(ClusterTransportTest, CommitsPropagateViaGossip) {
  ClusterDeployment cluster(storage_, clock_, Manual(3));
  ASSERT_TRUE(cluster.Start().ok());
  CommitVia(*cluster.node(0), "k", "gossip");
  EXPECT_FALSE(ReadVia(*cluster.node(1), "k").has_value());
  cluster.bus().RunOnce();
  EXPECT_EQ(ReadVia(*cluster.node(1), "k").value(), "gossip");
  EXPECT_EQ(ReadVia(*cluster.node(2), "k").value(), "gossip");
}

TEST_P(ClusterTransportTest, GossipPrunesSupersededRecords) {
  ClusterDeployment cluster(storage_, clock_, Manual(2));
  ASSERT_TRUE(cluster.Start().ok());
  CommitVia(*cluster.node(0), "k", "old");
  CommitVia(*cluster.node(0), "k", "new");
  cluster.bus().RunOnce();
  EXPECT_EQ(cluster.bus().stats().records_broadcast.load(), 1u);
  EXPECT_EQ(cluster.bus().stats().records_pruned.load(), 1u);
  EXPECT_EQ(cluster.bus().stats().records_to_fault_manager.load(), 2u);
  EXPECT_EQ(ReadVia(*cluster.node(1), "k").value(), "new");
}

TEST_P(ClusterTransportTest, LivenessScanRecoversUnbroadcastCommits) {
  ClusterDeployment cluster(storage_, clock_, Manual(2));
  ASSERT_TRUE(cluster.Start().ok());
  CommitVia(*cluster.node(0), "k", "acked");
  cluster.KillNode(0);
  cluster.bus().RunOnce();
  EXPECT_FALSE(ReadVia(*cluster.node(1), "k").has_value());
  clock_.Advance(std::chrono::seconds(5));
  EXPECT_EQ(cluster.fault_manager().RunLivenessScanOnce(), 1u);
  EXPECT_EQ(ReadVia(*cluster.node(1), "k").value(), "acked");
}

INSTANTIATE_TEST_SUITE_P(Transports, ClusterTransportTest,
                         ::testing::Values(ClusterTransport::kInProc, ClusterTransport::kTcp),
                         [](const ::testing::TestParamInfo<ClusterTransport>& info) {
                           return info.param == ClusterTransport::kTcp ? "Tcp" : "InProc";
                         });

// ---- Full background deployment (threads on) -------------------------------------------------

TEST(ClusterBackgroundTest, EndToEndWithBackgroundThreads) {
  RealClock clock(0.01);  // 100x real time.
  SimDynamo storage(clock, InstantDynamo());
  ClusterOptions options;
  options.num_nodes = 2;
  options.multicast_interval = Millis(200);
  options.node_options.local_gc_interval = Millis(200);
  options.node_options.enable_background_threads = true;
  options.fault_manager.gc_interval = Millis(300);
  options.fault_manager.scan_interval = Millis(500);
  options.fault_manager.detection_interval = Millis(100);
  ClusterDeployment cluster(storage, clock, options);
  ASSERT_TRUE(cluster.Start().ok());

  AftClientOptions client_options;
  client_options.network_hop = LatencyModel::Zero();
  AftClient client(cluster.balancer(), clock, client_options);
  // Commit through node 0 explicitly.
  auto txid = cluster.node(0)->StartTransaction();
  ASSERT_TRUE(txid.ok());
  ASSERT_TRUE(cluster.node(0)->Put(*txid, "bg", "works").ok());
  ASSERT_TRUE(cluster.node(0)->CommitTransaction(*txid).ok());

  // Within a few multicast periods node 1 serves the data.
  bool visible = false;
  for (int i = 0; i < 50 && !visible; ++i) {
    clock.SleepFor(Millis(100));
    auto reader = cluster.node(1)->StartTransaction();
    if (!reader.ok()) {
      continue;
    }
    auto result = cluster.node(1)->Get(*reader, "bg");
    visible = result.ok() && result->has_value();
    (void)cluster.node(1)->AbortTransaction(*reader);
  }
  cluster.Stop();
  EXPECT_TRUE(visible);
}

}  // namespace
}  // namespace aft
