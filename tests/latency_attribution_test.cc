// Latency attribution (aft_commit_stage_seconds) and the sampled contention
// profiler (src/common/contention.h).
//
// The load-bearing guarantees under test:
//   * Reconciliation — the per-stage commit decomposition is a set of
//     DISJOINT, nested slices of the end-to-end commit, so across any run
//     the stage sums total at most the aft_node_commit_latency_ms sum.
//     Holds on the solo fast path AND under batched concurrency, on both
//     the simulated-cloud engine and the durable LocalEngine.
//   * Coverage — every committed transaction observes every per-commit
//     stage exactly once, with exactly one queue_wait_{leader,follower}
//     by batch role (and none at all on the legacy unbatched path).
//   * Exactness — a thread that demonstrably blocked ~N ms on a named,
//     fully-sampled Mutex shows ≥ ~N ms of wait at its site; with sampling
//     off the same contention records nothing.
//   * Queue profiling — a named IoExecutor attributes queue wait and run
//     time to its "<name>.queue" / "<name>.run" sites.

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/common/contention.h"
#include "src/common/histogram.h"
#include "src/common/io_executor.h"
#include "src/common/mutex.h"
#include "src/core/aft_node.h"
#include "src/core/commit_batcher.h"
#include "src/obs/metrics.h"
#include "src/storage/local_engine.h"
#include "src/storage/sim_dynamo.h"

namespace aft {
namespace {

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/aft_attr_XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    path_ = dir == nullptr ? "" : dir;
  }
  ~TempDir() {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Zero-latency engine profile: attribution math, not simulated round trips.
SimDynamoOptions InstantDynamoOptions() {
  SimDynamoOptions options;
  options.profile = EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero()};
  options.staleness = StalenessModel{};
  options.txn_call = LatencyModel::Zero();
  return options;
}

AftNodeOptions FastNodeOptions(bool batching) {
  AftNodeOptions options;
  options.service_cores = 0;
  options.enable_commit_batching = batching;
  return options;
}

// Restores the global contention sampling rate (tests share a process).
class ScopedSampleRate {
 public:
  explicit ScopedSampleRate(uint32_t every_n) : saved_(contention::SampleEveryN()) {
    contention::SetSampleEveryN(every_n);
  }
  ~ScopedSampleRate() { contention::SetSampleEveryN(saved_); }

 private:
  uint32_t saved_;
};

contention::SiteSnapshot FindSite(const std::string& name) {
  for (const auto& site : contention::ContentionRegistry::Global().Snapshot()) {
    if (site.name == name) {
      return site;
    }
  }
  return contention::SiteSnapshot{};
}

// Drives `txns` single-key commits through `node` across `threads` threads
// and returns how many committed.
uint64_t RunCommits(AftNode& node, int threads, int txns_per_thread) {
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&node, &committed, t, txns_per_thread] {
      for (int i = 0; i < txns_per_thread; ++i) {
        auto txid = node.StartTransaction();
        if (!txid.ok()) {
          continue;
        }
        const std::string tag = std::to_string(t) + "-" + std::to_string(i);
        if (!node.Put(*txid, "k" + std::to_string(i % 4), "v" + tag).ok()) {
          continue;
        }
        if (node.CommitTransaction(*txid).ok()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  return committed.load();
}

// The reconciliation contract (docs/OBSERVABILITY.md "Latency attribution"):
// per-commit stages are disjoint slices of the commit_latency_ms window, so
// their sums cannot exceed the end-to-end sum. 5% + 2ms of slack absorbs
// float accumulation and the ms→s unit hop, NOT any structural overlap.
void CheckReconciliation(const std::string& node_id, uint64_t committed, bool batched) {
  auto& reg = obs::MetricsRegistry::Global();
  CommitStageHistograms stages = CommitStageHistograms::ForNode(node_id);
  obs::Histogram* e2e =
      reg.GetHistogram("aft_node_commit_latency_ms", "CommitTransaction wall latency (ms)",
                       DefaultLatencyBoundariesMs(), {{"node", node_id}});
  ASSERT_EQ(e2e->Count(), committed);

  // Coverage: one observation per committed transaction per per-commit stage.
  EXPECT_EQ(stages.txn_lock_wait->Count(), committed);
  EXPECT_EQ(stages.data_flush->Count(), committed);
  EXPECT_EQ(stages.barrier->Count(), committed);
  EXPECT_EQ(stages.record_write->Count(), committed);
  EXPECT_EQ(stages.gossip_publish->Count(), committed);
  const uint64_t queue_waits =
      stages.queue_wait_leader->Count() + stages.queue_wait_follower->Count();
  if (batched) {
    EXPECT_EQ(queue_waits, committed);
    EXPECT_GE(stages.queue_wait_leader->Count(), 1u);
  } else {
    EXPECT_EQ(queue_waits, 0u);  // The legacy path never touches the batcher.
  }

  const double stage_sum_s = stages.txn_lock_wait->Sum() + stages.queue_wait_leader->Sum() +
                             stages.queue_wait_follower->Sum() + stages.data_flush->Sum() +
                             stages.barrier->Sum() + stages.record_write->Sum() +
                             stages.gossip_publish->Sum();
  const double e2e_sum_s = e2e->Sum() * 1e-3;
  EXPECT_GT(stage_sum_s, 0.0);
  EXPECT_LE(stage_sum_s, e2e_sum_s * 1.05 + 2e-3)
      << "stage sum " << stage_sum_s << "s vs e2e " << e2e_sum_s << "s";
}

TEST(LatencyAttribution, ReconcilesSoloSimEngine) {
  RealClock clock(0.002);
  SimDynamo engine(clock, InstantDynamoOptions());
  AftNode node("attr-sim-solo", engine, clock, FastNodeOptions(true));
  ASSERT_TRUE(node.Start().ok());
  const uint64_t committed = RunCommits(node, /*threads=*/1, /*txns_per_thread=*/25);
  node.Kill();
  ASSERT_GT(committed, 0u);
  CheckReconciliation("attr-sim-solo", committed, /*batched=*/true);
}

TEST(LatencyAttribution, ReconcilesBatchedSimEngine) {
  RealClock clock(0.002);
  SimDynamo engine(clock, InstantDynamoOptions());
  AftNode node("attr-sim-batched", engine, clock, FastNodeOptions(true));
  ASSERT_TRUE(node.Start().ok());
  const uint64_t committed = RunCommits(node, /*threads=*/8, /*txns_per_thread=*/25);
  node.Kill();
  ASSERT_GT(committed, 0u);
  CheckReconciliation("attr-sim-batched", committed, /*batched=*/true);
}

TEST(LatencyAttribution, ReconcilesUnbatchedSimEngine) {
  RealClock clock(0.002);
  SimDynamo engine(clock, InstantDynamoOptions());
  AftNode node("attr-sim-legacy", engine, clock, FastNodeOptions(false));
  ASSERT_TRUE(node.Start().ok());
  const uint64_t committed = RunCommits(node, /*threads=*/4, /*txns_per_thread=*/25);
  node.Kill();
  ASSERT_GT(committed, 0u);
  CheckReconciliation("attr-sim-legacy", committed, /*batched=*/false);
}

TEST(LatencyAttribution, ReconcilesBatchedLocalEngine) {
  TempDir dir;
  RealClock clock(0.002);
  auto engine = LocalEngine::Open(dir.path());
  ASSERT_TRUE(engine.ok());
  AftNode node("attr-local-batched", **engine, clock, FastNodeOptions(true));
  ASSERT_TRUE(node.Start().ok());
  const uint64_t committed = RunCommits(node, /*threads=*/8, /*txns_per_thread=*/15);
  node.Kill();
  ASSERT_GT(committed, 0u);
  CheckReconciliation("attr-local-batched", committed, /*batched=*/true);
}

TEST(LatencyAttribution, ReconcilesUnbatchedLocalEngine) {
  TempDir dir;
  RealClock clock(0.002);
  auto engine = LocalEngine::Open(dir.path());
  ASSERT_TRUE(engine.ok());
  AftNode node("attr-local-legacy", **engine, clock, FastNodeOptions(false));
  ASSERT_TRUE(node.Start().ok());
  const uint64_t committed = RunCommits(node, /*threads=*/4, /*txns_per_thread=*/15);
  node.Kill();
  ASSERT_GT(committed, 0u);
  CheckReconciliation("attr-local-legacy", committed, /*batched=*/false);
}

// ---- contention profiler ----------------------------------------------------

TEST(ContentionProfiler, RecordsDemonstrableLockWait) {
  ScopedSampleRate sample(1);  // Every acquisition.
  Mutex mu("test.exact");
  std::atomic<bool> held{false};
  std::thread holder([&mu, &held] {
    MutexLock lock(mu);
    held.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  });
  while (!held.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // This acquisition demonstrably blocks until the holder's sleep ends.
  {
    MutexLock lock(mu);
  }
  holder.join();

  const auto site = FindSite("test.exact");
  EXPECT_EQ(site.kind, contention::SiteKind::kLock);
  EXPECT_GE(site.samples, 1u);
  EXPECT_GE(site.contended, 1u);
  // 40ms of provable blocking, measured within scheduling slop.
  EXPECT_GE(site.total_wait_ns, 25ull * 1000 * 1000);
  EXPECT_GE(site.max_wait_ns, 25ull * 1000 * 1000);
  EXPECT_GE(site.ApproxQuantileNs(0.99), site.ApproxQuantileNs(0.5));
}

TEST(ContentionProfiler, UnsampledRecordsNothing) {
  ScopedSampleRate sample(0);  // Profiler off.
  Mutex mu("test.unsampled");
  std::atomic<bool> held{false};
  std::thread holder([&mu, &held] {
    MutexLock lock(mu);
    held.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  while (!held.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  {
    MutexLock lock(mu);  // Contended — but sampling is off.
  }
  holder.join();

  // The site exists (named construction registers it) but saw no samples.
  const auto site = FindSite("test.unsampled");
  EXPECT_EQ(site.samples, 0u);
  EXPECT_EQ(site.contended, 0u);
  EXPECT_EQ(site.total_wait_ns, 0u);
}

TEST(ContentionProfiler, NamedExecutorProfilesQueueAndRunTime) {
  ScopedSampleRate sample(1);
  {
    IoExecutor executor(2, "attrexec");
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i) {
      executor.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No drain API: wait for the tasks themselves (the pool destructor would
    // drop queued work).
    while (ran.load(std::memory_order_acquire) < 16) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const auto queue_site = FindSite("attrexec.queue");
  const auto run_site = FindSite("attrexec.run");
  EXPECT_EQ(queue_site.kind, contention::SiteKind::kQueue);
  EXPECT_GE(queue_site.samples, 1u);
  EXPECT_GE(run_site.samples, 1u);
  // 16 tasks × ≥2ms run time on 2 threads: run-time attribution must see
  // multiple milliseconds even if the queue never backs up.
  EXPECT_GE(run_site.total_wait_ns, 4ull * 1000 * 1000);
}

}  // namespace
}  // namespace aft
