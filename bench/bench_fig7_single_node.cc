// Figure 7: single-node scalability. Throughput of ONE AFT node as the
// number of closed-loop clients grows from 1 to 50 (2-function 6-IO
// transactions, Zipf 1.5), over DynamoDB and Redis.
//
// Paper shape: linear scaling up to ~40 clients (DynamoDB) / ~45 clients
// (Redis), then a plateau as contention on the node's shared resources
// saturates it — peaking just under 600 txn/s (DynamoDB) and ~900 txn/s
// (Redis). The plateau here comes from the node's modelled service capacity
// (4 virtual cores, ~0.55ms per operation).

#include <cstdlib>

#include "bench/aft_env.h"
#include "src/storage/local_engine.h"
#include "src/storage/sim_dynamo.h"
#include "src/storage/sim_redis.h"

namespace aft {
namespace {

using bench::AftEnv;
using bench::BenchClock;
using bench::GetEnvLong;
using bench::PrintTitle;

template <typename EngineT>
void RunSweep(const char* label, double paper_peak) {
  std::printf("\n-- AFT over %s (paper peak ~%.0f txn/s) --\n", label, paper_peak);
  WorkloadSpec spec;
  spec.num_keys = 1000;
  spec.zipf_theta = 1.5;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 1;
  AftEnv<EngineT> env(BenchClock(), spec, cluster_options);

  const long requests = GetEnvLong("AFT_BENCH_REQUESTS", 60);
  double last_tput = 0;
  for (size_t clients : {1, 5, 10, 20, 30, 40, 50}) {
    HarnessOptions harness;
    harness.num_clients = clients;
    harness.requests_per_client = static_cast<size_t>(requests);
    harness.check_anomalies = false;
    const HarnessResult result = env.Run(harness);
    std::printf("  %2zu clients   %7.1f txn/s   p50 %6.1f ms   p99 %7.1f ms\n", clients,
                result.throughput_tps, result.latency.median_ms, result.latency.p99_ms);
    bench::EmitJsonRow("fig7_single_node",
                       std::string(label) + " " + std::to_string(clients) + "c",
                       result.latency.median_ms, result.latency.p99_ms,
                       result.throughput_tps, result.completed);
    last_tput = result.throughput_tps;
  }
  std::printf("  peak measured: %.0f txn/s\n", last_tput);
}

// The same single-node sweep over the durable WAL-backed engine — real
// writev + fdatasync instead of simulated latency. AftEnv holds its engine
// by value, so the factory-constructed LocalEngine gets a hand-rolled copy
// of the fixture. The headline column is fsyncs/txn: cross-transaction
// commit batching fuses every round member's data versions AND commit
// records into one WAL append with one group-committed sync, so the figure
// falls with concurrency (the PR 8 WAL-level group commit alone measured
// 0.13 at 16 writers; the protocol-level batcher stacks on top of it).
void RunLocalSweep() {
  std::printf("\n-- AFT over local WAL engine (real I/O; --engine local) --\n");
  char dir_template[] = "/tmp/aft_fig7_local_XXXXXX";
  const char* dir = mkdtemp(dir_template);
  if (dir == nullptr) {
    std::printf("  skipped: mkdtemp failed\n");
    return;
  }
  auto engine_or = LocalEngine::Open(dir);
  if (!engine_or.ok()) {
    std::printf("  skipped: %s\n", engine_or.status().ToString().c_str());
    return;
  }
  LocalEngine& engine = **engine_or;

  Clock& clock = BenchClock();
  WorkloadSpec spec;
  spec.num_keys = 1000;
  spec.zipf_theta = 1.5;
  (void)LoadAftDataset(engine, spec);
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 1;
  ClusterDeployment cluster(engine, clock, cluster_options);
  (void)cluster.Start();
  AftClient client(cluster.balancer(), clock);
  FaasPlatform faas(clock);
  TxnPlanGenerator plans(spec);
  AftRequestRunner runner(faas, client, clock, plans);

  const long requests = GetEnvLong("AFT_BENCH_REQUESTS", 60);
  for (size_t clients : {1, 5, 10, 20, 30, 40, 50}) {
    HarnessOptions harness;
    harness.num_clients = clients;
    harness.requests_per_client = static_cast<size_t>(requests);
    harness.check_anomalies = false;
    const Wal::Stats before = engine.wal_stats();
    const HarnessResult result = RunClients(clock, runner, harness, nullptr);
    const Wal::Stats after = engine.wal_stats();
    const uint64_t fsyncs = after.fsyncs - before.fsyncs;
    const double fsyncs_per_txn =
        result.completed > 0 ? static_cast<double>(fsyncs) / result.completed : 0;
    std::printf(
        "  %2zu clients   %7.1f txn/s   p50 %6.1f ms   p99 %7.1f ms   %.3f fsyncs/txn\n",
        clients, result.throughput_tps, result.latency.median_ms, result.latency.p99_ms,
        fsyncs_per_txn);
    bench::EmitJsonRowFsyncs("fig7_single_node", "local " + std::to_string(clients) + "c",
                             result.latency.median_ms, result.latency.p99_ms,
                             result.throughput_tps, result.completed, fsyncs_per_txn);
  }
  cluster.Stop();
}

}  // namespace
}  // namespace aft

int main() {
  using namespace aft;
  using namespace aft::bench;

  // Throughput bench: larger time scale + no spin-waiting so hundreds of
  // sleeping client threads do not contend for the CPU.
  BenchClock(/*default_scale=*/1.0, /*default_spin_us=*/0);

  PrintTitle("Figure 7: single-node throughput vs number of clients (Zipf 1.5)");
  RunSweep<SimDynamo>("DynamoDB", 600);
  RunSweep<SimRedis>("Redis", 900);
  RunLocalSweep();

  PrintTitle("Shape checks");
  std::printf("  expected: ~linear growth at low client counts, plateau by 40-50 clients;\n");
  std::printf("  expected: Redis peaks higher than DynamoDB (lower per-txn latency).\n");
  return 0;
}
