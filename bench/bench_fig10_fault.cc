// Figure 10: fault tolerance. A 4-node AFT deployment serving 200 parallel
// clients; one node is killed ~10 seconds in. The fault manager detects the
// failure (~5s), allocates a standby, which downloads its container and
// warms its metadata cache (~45s), and the node joins around t=60s.
//
// Paper shape: throughput drops ~16% at the failure, sags slightly while
// the surviving 3 nodes run saturated, then returns to the pre-failure peak
// within a few seconds of the replacement joining.

#include <thread>

#include "bench/aft_env.h"
#include "src/storage/sim_dynamo.h"

namespace aft {
namespace {

using bench::AftEnv;
using bench::BenchClock;
using bench::GetEnvLong;
using bench::PrintTitle;

}  // namespace
}  // namespace aft

int main() {
  using namespace aft;
  using namespace aft::bench;

  BenchClock(/*default_scale=*/1.0, /*default_spin_us=*/0);
  RealClock& clock = BenchClock();
  // Enough clients to saturate the 4-node fleet (like the paper's 200), so
  // the loss of one node is visible as a throughput drop.
  const size_t num_clients = static_cast<size_t>(GetEnvLong("AFT_BENCH_CLIENTS", 150));
  const double duration_sec = static_cast<double>(GetEnvLong("AFT_BENCH_DURATION_SEC", 90));
  const double kill_at_sec = 10.0;

  PrintTitle("Figure 10: node failure and recovery timeline");
  std::printf("  4 nodes, %zu clients; node killed at t=%.0fs; detection ~5s; container "
              "download + cache warm ~45s\n",
              num_clients, kill_at_sec);

  WorkloadSpec spec;
  spec.num_keys = 1000;
  spec.zipf_theta = 1.0;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 4;
  cluster_options.multicast_interval = Millis(1000);
  cluster_options.start_background_threads = true;
  cluster_options.node_options.enable_background_threads = true;
  cluster_options.fault_manager.detection_interval = Millis(1000);
  cluster_options.fault_manager.failure_detection_delay = std::chrono::seconds(5);
  cluster_options.fault_manager.container_download_time = std::chrono::seconds(45);
  AftEnv<SimDynamo> env(clock, spec, cluster_options);

  // The assassin: kills node 0 at t = kill_at_sec.
  const TimePoint start = clock.Now();
  std::thread assassin([&] {
    clock.SleepFor(std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(kill_at_sec)));
    std::printf("  >> killing node %s\n", env.cluster->node(0)->node_id().c_str());
    env.cluster->KillNode(0);
  });

  ThroughputTimeline timeline(clock, Millis(1000));
  HarnessOptions harness;
  harness.num_clients = num_clients;
  harness.requests_per_client = 1000000;
  harness.max_duration = std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(duration_sec));
  harness.check_anomalies = false;
  const HarnessResult result = env.Run(harness, &timeline);
  assassin.join();

  const auto& fm_stats = env.cluster->fault_manager().stats();
  std::printf("\n  failures detected: %llu, nodes replaced: %llu, missed commits recovered: "
              "%llu\n",
              static_cast<unsigned long long>(fm_stats.failures_detected.load()),
              static_cast<unsigned long long>(fm_stats.nodes_replaced.load()),
              static_cast<unsigned long long>(fm_stats.missed_commits_recovered.load()));
  std::printf("  requests failed over (retried on a surviving node): aggregate tput %.1f "
              "txn/s, %llu failed\n",
              result.throughput_tps, static_cast<unsigned long long>(result.failed));

  std::printf("\n  t(s)   txn/s\n");
  const auto rows = timeline.Report();
  for (size_t i = 0; i + 1 < rows.size(); ++i) {
    std::printf("  %-6.0f %8.1f%s\n", rows[i].window_start_sec, rows[i].events_per_sec,
                rows[i].window_start_sec == kill_at_sec ? "   << node fails" : "");
  }
  (void)start;

  PrintTitle("Shape checks");
  std::printf("  expected: dip of roughly one node's share (~25%% of 4 nodes) after the kill;\n");
  std::printf("  expected: recovery to the pre-failure level shortly after t~60s.\n");
  return 0;
}
