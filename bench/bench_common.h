// Shared helpers for the paper-reproduction benchmarks.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation (§6) and prints the measured rows next to the paper's reported
// numbers. Latencies are in SIMULATED milliseconds: the engines sleep
// `latency * AFT_TIME_SCALE` of wall time (default 0.05, i.e. 20x faster
// than real time) and all reported numbers are in simulated units, so the
// scale does not change the results, only how long the bench takes.
//
// Knobs (environment variables):
//   AFT_TIME_SCALE      wall seconds per simulated second (default 0.05)
//   AFT_BENCH_REQUESTS  per-client request count override (default per bench)
//   AFT_BENCH_JSON      append one JSON line per measured row to this file
//                       (consumed by tools/bench.sh to build BENCH_results.json)

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>

#include "src/common/clock.h"

namespace aft {
namespace bench {

// ---- Allocations-per-op counter (opt-in) -----------------------------------
// A bench binary that wants to report heap allocations per operation defines
// AFT_BENCH_COUNT_ALLOCS before including this header. That compiles a
// binary-wide replacement of the global operator new/delete (each bench is a
// single translation unit, so the replacement is defined exactly once) which
// bumps a thread-local counter while an AllocCountScope is armed on the
// calling thread. Disarmed threads pay one thread-local branch per
// allocation; binaries that do not define the macro are untouched.
#ifdef AFT_BENCH_COUNT_ALLOCS
namespace alloc_detail {
inline thread_local uint64_t g_allocs = 0;
inline thread_local bool g_armed = false;
}  // namespace alloc_detail

// Counts allocations made by THIS thread while in scope. Scopes do not nest
// meaningfully (the counter keeps running; count() is a simple delta), which
// is all the benches need.
class AllocCountScope {
 public:
  AllocCountScope() : start_(alloc_detail::g_allocs) { alloc_detail::g_armed = true; }
  ~AllocCountScope() { alloc_detail::g_armed = false; }
  AllocCountScope(const AllocCountScope&) = delete;
  AllocCountScope& operator=(const AllocCountScope&) = delete;

  uint64_t count() const { return alloc_detail::g_allocs - start_; }

 private:
  uint64_t start_;
};
#endif  // AFT_BENCH_COUNT_ALLOCS

inline double GetEnvDouble(const char* name, double fallback) {
  if (const char* env = std::getenv(name); env != nullptr) {
    const double v = std::atof(env);
    if (v > 0) {
      return v;
    }
  }
  return fallback;
}

inline long GetEnvLong(const char* name, long fallback) {
  if (const char* env = std::getenv(name); env != nullptr) {
    const long v = std::atol(env);
    if (v > 0) {
      return v;
    }
  }
  return fallback;
}

// Like GetEnvLong but an explicit "0" is a valid setting.
inline long GetEnvNonNegLong(const char* name, long fallback) {
  if (const char* env = std::getenv(name); env != nullptr && env[0] != '\0') {
    return std::atol(env);
  }
  return fallback;
}

// The bench clock: real time scaled down so simulated cloud latencies play
// out 1/scale times faster. The defaults apply only to the FIRST call in the
// process (latency benches use a small scale + precise spin sleeps;
// throughput benches pass a larger scale and spin_us = 0 so hundreds of
// client threads do not busy-wait on one another).
inline RealClock& BenchClock(double default_scale = 0.05, long default_spin_us = 200) {
  static RealClock* clock = new RealClock(
      GetEnvDouble("AFT_TIME_SCALE", default_scale),
      std::chrono::microseconds(GetEnvNonNegLong("AFT_SPIN_US", default_spin_us)));
  return *clock;
}

inline void PrintTitle(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void PrintNote(const std::string& note) { std::printf("  %s\n", note.c_str()); }

// Machine-readable row sink. When AFT_BENCH_JSON names a file, every measured
// row is appended to it as one JSON object per line; tools/bench.sh collects
// the lines into BENCH_results.json. No-op when the variable is unset.
inline void EmitJsonRow(const std::string& bench, const std::string& row,
                        double p50_ms, double p99_ms, double throughput_tps,
                        uint64_t completed) {
  static std::FILE* sink = []() -> std::FILE* {
    const char* path = std::getenv("AFT_BENCH_JSON");
    if (path == nullptr || path[0] == '\0') {
      return nullptr;
    }
    return std::fopen(path, "a");
  }();
  if (sink == nullptr) {
    return;
  }
  std::fprintf(sink,
               "{\"bench\":\"%s\",\"row\":\"%s\",\"p50_ms\":%.4f,"
               "\"p99_ms\":%.4f,\"txn_per_s\":%.2f,\"completed\":%llu}\n",
               bench.c_str(), row.c_str(), p50_ms, p99_ms, throughput_tps,
               static_cast<unsigned long long>(completed));
  std::fflush(sink);
}

// Like EmitJsonRow, with the measured allocations-per-operation attached as an
// extra "allocs_per_txn" field (consumed by the tools/bench_gate.sh ceiling).
inline void EmitJsonRowAllocs(const std::string& bench, const std::string& row,
                              double p50_ms, double p99_ms, double throughput_tps,
                              uint64_t completed, double allocs_per_txn) {
  static std::FILE* sink = []() -> std::FILE* {
    const char* path = std::getenv("AFT_BENCH_JSON");
    if (path == nullptr || path[0] == '\0') {
      return nullptr;
    }
    return std::fopen(path, "a");
  }();
  if (sink == nullptr) {
    return;
  }
  std::fprintf(sink,
               "{\"bench\":\"%s\",\"row\":\"%s\",\"p50_ms\":%.4f,"
               "\"p99_ms\":%.4f,\"txn_per_s\":%.2f,\"completed\":%llu,"
               "\"allocs_per_txn\":%.1f}\n",
               bench.c_str(), row.c_str(), p50_ms, p99_ms, throughput_tps,
               static_cast<unsigned long long>(completed), allocs_per_txn);
  std::fflush(sink);
}

// Like EmitJsonRow, with the measured fsyncs-per-transaction attached as an
// extra "fsyncs_per_txn" field (the local-engine batch-fusion figure).
inline void EmitJsonRowFsyncs(const std::string& bench, const std::string& row,
                              double p50_ms, double p99_ms, double throughput_tps,
                              uint64_t completed, double fsyncs_per_txn) {
  static std::FILE* sink = []() -> std::FILE* {
    const char* path = std::getenv("AFT_BENCH_JSON");
    if (path == nullptr || path[0] == '\0') {
      return nullptr;
    }
    return std::fopen(path, "a");
  }();
  if (sink == nullptr) {
    return;
  }
  std::fprintf(sink,
               "{\"bench\":\"%s\",\"row\":\"%s\",\"p50_ms\":%.4f,"
               "\"p99_ms\":%.4f,\"txn_per_s\":%.2f,\"completed\":%llu,"
               "\"fsyncs_per_txn\":%.3f}\n",
               bench.c_str(), row.c_str(), p50_ms, p99_ms, throughput_tps,
               static_cast<unsigned long long>(completed), fsyncs_per_txn);
  std::fflush(sink);
}

}  // namespace bench
}  // namespace aft

#ifdef AFT_BENCH_COUNT_ALLOCS
// Global operator new/delete replacement backing AllocCountScope. Defined in
// the header because every bench binary is one translation unit; the counter
// must see EVERY allocation in the binary, including those inside libstdc++
// container code, so this cannot live behind a function-call boundary.
//
// GCC cannot see that these replacements pair malloc with free and warns
// about a mismatch at some inlined call sites; the pairing is by design.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
namespace aft_bench_alloc_impl {
inline void* CountedAlloc(std::size_t size) {
  if (aft::bench::alloc_detail::g_armed) {
    ++aft::bench::alloc_detail::g_allocs;
  }
  return std::malloc(size != 0 ? size : 1);
}
}  // namespace aft_bench_alloc_impl

void* operator new(std::size_t size) {
  if (void* p = aft_bench_alloc_impl::CountedAlloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return aft_bench_alloc_impl::CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return aft_bench_alloc_impl::CountedAlloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#endif  // AFT_BENCH_COUNT_ALLOCS

#endif  // BENCH_BENCH_COMMON_H_
