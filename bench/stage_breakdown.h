// Per-stage commit breakdown reporting for bench mains: snapshots one node's
// aft_commit_stage_seconds children (plus its end-to-end commit histogram)
// on construction, and Report() prints + emits the DELTA as per-commit stage
// means alongside the e2e mean — BENCH_results.json rows a reader can
// reconcile by eye ("stage sum ≈ 87% of e2e").
//
// Reconciliation contract (docs/OBSERVABILITY.md "Latency attribution"): the
// stages are disjoint nested slices of the e2e commit window, so the stage
// sum is AT MOST the e2e mean; the uncovered remainder is unattributed
// commit-path work (record building, cache updates, index inserts). Report()
// fails the process when the sum overshoots e2e by more than 5% + 50 µs per
// commit — an overshoot means a stage got double-counted, never noise.

#ifndef BENCH_STAGE_BREAKDOWN_H_
#define BENCH_STAGE_BREAKDOWN_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_common.h"
#include "src/common/histogram.h"
#include "src/core/commit_batcher.h"
#include "src/obs/metrics.h"

namespace aft {
namespace bench {

class StageBreakdown {
 public:
  StageBreakdown(std::string bench, const std::string& node_id)
      : bench_(std::move(bench)), stages_(CommitStageHistograms::ForNode(node_id)) {
    e2e_ = obs::MetricsRegistry::Global().GetHistogram(
        "aft_node_commit_latency_ms", "CommitTransaction wall latency (ms)",
        DefaultLatencyBoundariesMs(), {{"node", node_id}});
    Capture(&start_);
  }

  // Prints the per-stage means for everything committed since construction
  // and emits one "<row_prefix> stage <name>" JSON row per stage plus a
  // "<row_prefix> stage total" row carrying (stage sum, e2e mean) in the
  // (p50_ms, p99_ms) columns. Re-arms for a following window.
  void Report(const std::string& row_prefix) {
    State now;
    Capture(&now);
    const uint64_t commits = now.e2e_count - start_.e2e_count;
    if (commits == 0) {
      return;
    }
    const double e2e_mean_ms = (now.e2e_sum_ms - start_.e2e_sum_ms) / commits;
    double stage_sum_ms = 0;
    std::printf("  %s per-stage breakdown (%llu commits, mean ms/txn):\n", row_prefix.c_str(),
                static_cast<unsigned long long>(commits));
    for (int i = 0; i < kNumStages; ++i) {
      const double mean_ms = (now.stage_sum_s[i] - start_.stage_sum_s[i]) * 1e3 / commits;
      stage_sum_ms += mean_ms;
      std::printf("    %-20s %9.4f ms\n", kStageNames[i], mean_ms);
      EmitJsonRow(bench_, row_prefix + " stage " + kStageNames[i], mean_ms, mean_ms, 0.0,
                  commits);
    }
    const double coverage = e2e_mean_ms > 0 ? 100.0 * stage_sum_ms / e2e_mean_ms : 0;
    std::printf("    %-20s %9.4f ms   (e2e %9.4f ms, %.0f%% attributed)\n", "stage sum",
                stage_sum_ms, e2e_mean_ms, coverage);
    EmitJsonRow(bench_, row_prefix + " stage total", stage_sum_ms, e2e_mean_ms, 0.0, commits);
    if (stage_sum_ms > e2e_mean_ms * 1.05 + 0.05) {
      std::fprintf(stderr,
                   "FATAL: stage sum %.4f ms exceeds e2e %.4f ms — a commit stage is being "
                   "double-counted\n",
                   stage_sum_ms, e2e_mean_ms);
      std::exit(1);
    }
    start_ = now;
  }

 private:
  static constexpr int kNumStages = 7;
  static constexpr const char* kStageNames[kNumStages] = {
      "txn_lock_wait", "queue_wait_leader", "queue_wait_follower", "data_flush",
      "barrier",       "record_write",      "gossip_publish"};

  struct State {
    double stage_sum_s[kNumStages] = {};
    double e2e_sum_ms = 0;
    uint64_t e2e_count = 0;
  };

  void Capture(State* out) {
    obs::Histogram* children[kNumStages] = {
        stages_.txn_lock_wait, stages_.queue_wait_leader, stages_.queue_wait_follower,
        stages_.data_flush,    stages_.barrier,           stages_.record_write,
        stages_.gossip_publish};
    for (int i = 0; i < kNumStages; ++i) {
      out->stage_sum_s[i] = children[i]->Sum();
    }
    out->e2e_sum_ms = e2e_->Sum();
    out->e2e_count = e2e_->Count();
  }

  const std::string bench_;
  CommitStageHistograms stages_;
  obs::Histogram* e2e_;
  State start_;
};

}  // namespace bench
}  // namespace aft

#endif  // BENCH_STAGE_BREAKDOWN_H_
