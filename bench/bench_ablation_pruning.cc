// Ablation: commit-set multicast pruning (§4.1).
//
// Every node broadcasts its recently committed transactions each second;
// locally superseded transactions are omitted. This bench measures how much
// metadata traffic the supersedence check saves as a function of workload
// skew — the paper's claim: "For highly contended workloads in particular
// ... this significantly reduces the volume of metadata that must be
// communicated between replicas."

#include "bench/aft_env.h"
#include "src/storage/sim_dynamo.h"

namespace aft {
namespace {

using bench::AftEnv;
using bench::BenchClock;
using bench::GetEnvLong;
using bench::PrintTitle;

struct AblationRow {
  uint64_t committed = 0;
  uint64_t broadcast = 0;
  uint64_t pruned = 0;
};

AblationRow RunConfig(double theta, bool pruning, size_t requests) {
  WorkloadSpec spec;
  spec.num_keys = 1000;
  spec.zipf_theta = theta;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 3;
  cluster_options.multicast_interval = Millis(1000);
  cluster_options.start_background_threads = true;
  AftEnv<SimDynamo> env(BenchClock(), spec, cluster_options);
  env.cluster->bus().set_pruning_enabled(pruning);

  HarnessOptions harness;
  harness.num_clients = 12;
  harness.requests_per_client = requests;
  harness.check_anomalies = false;
  const HarnessResult result = env.Run(harness);
  env.cluster->Stop();  // Final drain so every commit reaches the bus.

  AblationRow row;
  row.committed = result.completed;
  row.broadcast = env.cluster->bus().stats().records_broadcast.load();
  row.pruned = env.cluster->bus().stats().records_pruned.load();
  return row;
}

}  // namespace
}  // namespace aft

int main() {
  using namespace aft;
  using namespace aft::bench;

  BenchClock(/*default_scale=*/0.3, /*default_spin_us=*/0);
  const size_t requests = static_cast<size_t>(GetEnvLong("AFT_BENCH_REQUESTS", 60));

  PrintTitle("Ablation: supersedence pruning of the commit multicast (3 nodes)");
  std::printf("  %-10s %-10s %-12s %-12s %-10s\n", "zipf", "pruning", "committed",
              "broadcast", "saved");
  for (double theta : {0.5, 1.0, 1.5, 2.0}) {
    const AblationRow off = RunConfig(theta, false, requests);
    const AblationRow on = RunConfig(theta, true, requests);
    std::printf("  %-10.1f %-10s %-12llu %-12llu %-10s\n", theta, "off",
                static_cast<unsigned long long>(off.committed),
                static_cast<unsigned long long>(off.broadcast), "-");
    const double saved =
        on.broadcast + on.pruned > 0
            ? 100.0 * static_cast<double>(on.pruned) /
                  static_cast<double>(on.broadcast + on.pruned)
            : 0.0;
    std::printf("  %-10.1f %-10s %-12llu %-12llu %5.1f%%\n", theta, "on",
                static_cast<unsigned long long>(on.committed),
                static_cast<unsigned long long>(on.broadcast), saved);
  }

  PrintTitle("Shape checks");
  std::printf("  expected: savings grow with skew (hot keys supersede quickly within each "
              "1s window).\n");
  return 0;
}
