// Ablation: data layout over S3 (§6.1.2's observed weakness + the §8
// "Efficient Data Layout" future work, implemented here).
//
// The paper found AFT's key-per-version layout "poorly suited to S3, which
// has high random IO latencies" — every committed key becomes its own small
// object PUT, and S3 has no batch API. The packed layout writes ONE
// log-structured segment object per commit (plus per-key locators in the
// commit record) and serves reads with ranged GETs. This bench runs the
// Figure 3 workload over S3 in both layouts, plus the Plain baseline for
// reference.

#include "bench/aft_env.h"
#include "src/storage/sim_s3.h"

namespace aft {
namespace {

using bench::AftEnv;
using bench::BenchClock;
using bench::GetEnvLong;
using bench::PrintTitle;

HarnessResult RunLayout(bool packed, const HarnessOptions& harness, uint64_t* puts) {
  WorkloadSpec spec;
  spec.num_keys = 1000;
  spec.zipf_theta = 1.0;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 1;
  cluster_options.node_options.data_cache_bytes = 0;  // Match the Fig 3 setup.
  cluster_options.node_options.packed_layout = packed;
  AftEnv<SimS3> env(BenchClock(), spec, cluster_options);
  const HarnessResult result = env.Run(harness);
  *puts = env.engine.counters().puts.load();
  return result;
}

HarnessResult RunPlain(const HarnessOptions& harness) {
  RealClock& clock = BenchClock();
  SimS3 engine(clock);
  WorkloadSpec spec;
  spec.num_keys = 1000;
  spec.zipf_theta = 1.0;
  (void)LoadPlainDataset(engine, spec);
  FaasPlatform faas(clock);
  TxnPlanGenerator plans(spec);
  PlainRequestRunner runner(faas, engine, clock, plans);
  HarnessOptions relaxed = harness;
  relaxed.check_anomalies = false;
  return RunClients(clock, runner, relaxed);
}

}  // namespace
}  // namespace aft

int main() {
  using namespace aft;
  using namespace aft::bench;

  BenchClock(/*default_scale=*/0.25, /*default_spin_us=*/0);
  HarnessOptions harness;
  harness.num_clients = 10;
  harness.requests_per_client = static_cast<size_t>(GetEnvLong("AFT_BENCH_REQUESTS", 120));
  harness.check_anomalies = false;

  PrintTitle("Ablation: S3 data layout (2-function 6-IO txns, Zipf 1.0, no read cache)");

  uint64_t per_key_puts = 0;
  uint64_t packed_puts = 0;
  const HarnessResult plain = RunPlain(harness);
  const HarnessResult per_key = RunLayout(false, harness, &per_key_puts);
  const HarnessResult packed = RunLayout(true, harness, &packed_puts);

  std::printf("  %-22s p50 %7.2f ms   p99 %8.2f ms\n", "S3 Plain (no shim)",
              plain.latency.median_ms, plain.latency.p99_ms);
  std::printf("  %-22s p50 %7.2f ms   p99 %8.2f ms   %6.2f PUTs/txn\n",
              "AFT key-per-version", per_key.latency.median_ms, per_key.latency.p99_ms,
              per_key.completed > 0
                  ? static_cast<double>(per_key_puts) / static_cast<double>(per_key.completed)
                  : 0);
  std::printf("  %-22s p50 %7.2f ms   p99 %8.2f ms   %6.2f PUTs/txn\n",
              "AFT packed segments", packed.latency.median_ms, packed.latency.p99_ms,
              packed.completed > 0
                  ? static_cast<double>(packed_puts) / static_cast<double>(packed.completed)
                  : 0);

  const double overhead_per_key =
      100.0 * (per_key.latency.median_ms / plain.latency.median_ms - 1.0);
  const double overhead_packed =
      100.0 * (packed.latency.median_ms / plain.latency.median_ms - 1.0);
  std::printf("\n  shim overhead vs Plain: key-per-version %+.0f%% (paper ~+25%%), packed "
              "%+.0f%%\n",
              overhead_per_key, overhead_packed);

  PrintTitle("Shape checks");
  std::printf("  expected: packed layout cuts PUTs/txn (1 segment + 1 record vs N+1)\n");
  std::printf("  and brings AFT-over-S3 overhead well below the key-per-version layout.\n");
  return 0;
}
