// Figure 6: transaction length. Transactions of 1 to 10 functions (each
// doing 2 reads + 1 write) over DynamoDB and Redis.
//
// Paper reference (median / p99 ms):
//   Dynamo: 1f 43.0/101  2f 70.3/141  4f 123/216  6f 175/280  8f 221/334  10f 270/403
//   Redis:  1f 27.0/69.6 2f 49.8/115  4f 96.6/176 6f 144/238  8f 191/291  10f 239/352
//
// Shapes: both scale ~linearly with length; DynamoDB's batched commit masks
// the growing write set (10-function txns are ~6x a 1-function txn, not
// 10x); Redis pays one API call per write so it scales closer to ~9x; the
// relative DynamoDB-vs-Redis gap shrinks with length (59% -> 13% in the
// paper) because the fixed commit overhead amortizes.

#include "bench/aft_env.h"
#include "src/storage/sim_dynamo.h"
#include "src/storage/sim_redis.h"

namespace aft {
namespace {

using bench::AftEnv;
using bench::BenchClock;
using bench::GetEnvLong;
using bench::PrintTitle;

struct PaperRow {
  double median, p99;
};
const size_t kLengths[] = {1, 2, 4, 6, 8, 10};
const PaperRow kPaperDynamo[] = {{43.0, 101}, {70.3, 141}, {123, 216},
                                 {175, 280},  {221, 334},  {270, 403}};
const PaperRow kPaperRedis[] = {{27.0, 69.6}, {49.8, 115}, {96.6, 176},
                                {144, 238},   {191, 291},  {239, 352}};

template <typename EngineT>
std::vector<HarnessResult> RunSweep(const char* label, const PaperRow* paper,
                                    const HarnessOptions& harness) {
  std::printf("\n-- AFT over %s --\n", label);
  std::vector<HarnessResult> results;
  for (size_t i = 0; i < std::size(kLengths); ++i) {
    WorkloadSpec spec;
    spec.num_keys = 1000;
    spec.zipf_theta = 1.0;
    spec.num_functions = kLengths[i];
    spec.reads_per_function = 2;
    spec.writes_per_function = 1;
    ClusterOptions cluster_options;
    cluster_options.num_nodes = 1;
    AftEnv<EngineT> env(BenchClock(), spec, cluster_options);
    results.push_back(env.Run(harness));
    std::printf("  %2zu function%s  p50 %7.2f ms   p99 %8.2f ms   (paper: %5.1f / %5.1f)\n",
                kLengths[i], kLengths[i] == 1 ? " " : "s", results.back().latency.median_ms,
                results.back().latency.p99_ms, paper[i].median, paper[i].p99);
    bench::EmitJsonRow("fig6_txn_length",
                       std::string(label) + " " + std::to_string(kLengths[i]) + "f",
                       results.back().latency.median_ms, results.back().latency.p99_ms,
                       results.back().throughput_tps, results.back().completed);
  }
  return results;
}

}  // namespace
}  // namespace aft

int main() {
  using namespace aft;
  using namespace aft::bench;

  // Latency bench with concurrent clients: pure sleeps, moderate scale.
  BenchClock(/*default_scale=*/0.25, /*default_spin_us=*/0);

  HarnessOptions harness;
  harness.num_clients = 10;
  harness.requests_per_client = static_cast<size_t>(GetEnvLong("AFT_BENCH_REQUESTS", 120));
  harness.check_anomalies = false;

  PrintTitle("Figure 6: transaction length, 1-10 functions (3 IOs each)");
  auto dynamo = RunSweep<SimDynamo>("DynamoDB", kPaperDynamo, harness);
  auto redis = RunSweep<SimRedis>("Redis", kPaperRedis, harness);

  PrintTitle("Shape checks");
  const double d_ratio = dynamo.back().latency.median_ms / dynamo.front().latency.median_ms;
  const double r_ratio = redis.back().latency.median_ms / redis.front().latency.median_ms;
  std::printf("  10f/1f growth: DynamoDB %.1fx (paper 6.2x), Redis %.1fx (paper 8.9x)\n",
              d_ratio, r_ratio);
  std::printf("  DynamoDB vs Redis gap: %.0f%% at 1 function (paper 59%%), %.0f%% at 10 "
              "(paper 13%%)\n",
              100 * (dynamo.front().latency.median_ms / redis.front().latency.median_ms - 1),
              100 * (dynamo.back().latency.median_ms / redis.back().latency.median_ms - 1));
  return 0;
}
