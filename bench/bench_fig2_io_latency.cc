// Figure 2: IO latency of 1 / 5 / 10 writes from a single client (no FaaS),
// comparing direct DynamoDB access (sequential and batched) against AFT's
// commit protocol (client sending sequential puts, or one batched request).
//
// Paper takeaways this bench reproduces:
//  * DynamoDB Sequential grows ~linearly with the number of writes; its tail
//    grows super-linearly.
//  * DynamoDB Batch grows much more slowly (~2x from 1 to 10 writes).
//  * AFT Sequential beats DynamoDB Sequential at 5+ writes because the
//    commit protocol batches the storage writes.
//  * AFT Batch tracks DynamoDB Batch with a small fixed overhead (the extra
//    network hop + the commit record write — "about 6ms" in the paper).

#include <functional>
#include <vector>

#include "bench/bench_common.h"
#include "src/cluster/aft_client.h"
#include "src/cluster/load_balancer.h"
#include "src/common/stats.h"
#include "src/core/aft_node.h"
#include "src/storage/sim_dynamo.h"
#include "src/workload/workload.h"

namespace aft {
namespace {

using bench::BenchClock;

constexpr size_t kValueBytes = 4096;

struct PaperRow {
  double median;
  double p99;
};

// Reference numbers read off Figure 2 (medians / 99th percentiles, ms).
struct PaperFig2 {
  PaperRow aft_seq, aft_batch, ddb_seq, ddb_batch;
};
const PaperFig2 kPaper[] = {
    {{10.2, 17.2}, {9.9, 15.3}, {3.03, 5.45}, {3.08, 7.49}},   // 1 write
    {{13.4, 28.6}, {10.9, 18.3}, {14.9, 580}, {4.65, 11.7}},   // 5 writes
    {{17.6, 56.9}, {12.3, 25.5}, {35.6, 696}, {6.82, 15.2}},   // 10 writes
};

LatencySummary Measure(long requests, const std::function<void(size_t)>& one_request) {
  LatencyRecorder recorder;
  Clock& clock = BenchClock();
  for (long i = 0; i < requests; ++i) {
    const TimePoint begin = clock.Now();
    one_request(static_cast<size_t>(i));
    recorder.Record(clock.Now() - begin);
  }
  return recorder.Summarize();
}

void PrintRow(const char* name, const LatencySummary& s, const PaperRow& paper) {
  std::printf("  %-22s median %7.2f ms   p99 %8.2f ms   (paper: %6.2f / %6.2f)\n", name,
              s.median_ms, s.p99_ms, paper.median, paper.p99);
}

}  // namespace
}  // namespace aft

int main() {
  using namespace aft;
  using namespace aft::bench;

  const long requests = GetEnvLong("AFT_BENCH_REQUESTS", 300);
  RealClock& clock = BenchClock();

  PrintTitle("Figure 2: IO latency, single client writing 4KB objects to DynamoDB");
  PrintNote("requests per configuration: " + std::to_string(requests));
  std::printf("  time scale: %.3f (latencies reported in simulated ms)\n", clock.scale());

  SimDynamo storage(clock);
  AftNode node("fig2", storage, clock);
  if (!node.Start().ok()) {
    return 1;
  }
  LoadBalancer balancer;
  balancer.AddNode(&node);
  AftClient client(balancer, clock);

  WorkloadSpec spec;
  spec.value_bytes = kValueBytes;
  const std::string payload = MakePayload(spec, 1);

  const size_t write_counts[] = {1, 5, 10};
  for (size_t wc_index = 0; wc_index < 3; ++wc_index) {
    const size_t num_writes = write_counts[wc_index];
    std::printf("\n-- %zu write%s --\n", num_writes, num_writes == 1 ? "" : "s");

    // DynamoDB Sequential: one PutItem per write.
    auto ddb_seq = Measure(requests, [&](size_t r) {
      for (size_t w = 0; w < num_writes; ++w) {
        (void)storage.Put("seq" + std::to_string(r % 64) + "_" + std::to_string(w), payload);
      }
    });

    // DynamoDB Batch: one BatchWriteItem.
    auto ddb_batch = Measure(requests, [&](size_t r) {
      std::vector<WriteOp> ops;
      for (size_t w = 0; w < num_writes; ++w) {
        ops.push_back(WriteOp{"bat" + std::to_string(r % 64) + "_" + std::to_string(w), payload});
      }
      (void)storage.BatchPut(ops);
    });

    // AFT Sequential: the client sends each put separately, then commits.
    auto aft_seq = Measure(requests, [&](size_t r) {
      auto session = client.StartTransaction();
      for (size_t w = 0; w < num_writes; ++w) {
        (void)client.Put(*session, "aseq" + std::to_string(r % 64) + "_" + std::to_string(w),
                         payload);
      }
      (void)client.Commit(*session);
    });

    // AFT Batch: all writes in a single request to the shim, then commit.
    auto aft_batch = Measure(requests, [&](size_t r) {
      auto session = client.StartTransaction();
      std::vector<WriteOp> ops;
      for (size_t w = 0; w < num_writes; ++w) {
        ops.push_back(
            WriteOp{"abat" + std::to_string(r % 64) + "_" + std::to_string(w), payload});
      }
      (void)client.PutBatch(*session, ops);
      (void)client.Commit(*session);
    });

    const PaperFig2& paper = kPaper[wc_index];
    PrintRow("Aft Sequential", aft_seq, paper.aft_seq);
    PrintRow("Aft Batch", aft_batch, paper.aft_batch);
    PrintRow("DynamoDB Sequential", ddb_seq, paper.ddb_seq);
    PrintRow("DynamoDB Batch", ddb_batch, paper.ddb_batch);
  }

  PrintTitle("Shape checks");
  PrintNote("expected: AFT Sequential < DynamoDB Sequential at 5+ writes;");
  PrintNote("expected: AFT Batch ~= DynamoDB Batch + small fixed overhead;");
  PrintNote("expected: DynamoDB Sequential grows ~linearly with write count.");
  return 0;
}
