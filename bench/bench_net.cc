// Transport microbench: what does the real TCP boundary cost?
//
// Part 1 (latency): runs the same commit and MultiGet workloads twice —
// directly against an AftNode (in-proc, the original call path) and through
// AftServiceServer + RemoteAftClient over loopback TCP (framing, CRC, two
// socket hops per op) — and reports p50/p99 per path.
//
// Part 2 (throughput): closed-loop multi-client sweep at 1/4/16/64 client
// threads against three transport configurations:
//   * event    — epoll event-loop server, pooled + pipelined client;
//   * thread   — thread-per-connection server, pooled + pipelined client;
//   * baseline — thread-per-connection server, ONE connection, single-flight
//                (the pre-pipelining transport; the acceptance yardstick).
// Each row reports ops/sec plus per-op p50/p99.
//
// Storage latencies are zeroed so the rows isolate pure shim + wire overhead,
// and all numbers here are WALL-CLOCK milliseconds (the wire is real
// hardware; the simulated time scale does not apply to it).
//
// Knobs: AFT_BENCH_REQUESTS (latency reps), AFT_BENCH_TPUT_OPS (closed-loop
// ops per client; defaults to min(AFT_BENCH_REQUESTS, 200) so --smoke stays
// fast).

#include <chrono>
#include <string>
#include <thread>
#include <vector>

// Count heap allocations on the measuring thread (allocs/txn columns).
#define AFT_BENCH_COUNT_ALLOCS
#include "bench/bench_common.h"
#include "src/common/stats.h"
#include "src/core/aft_node.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/storage/sim_dynamo.h"

namespace aft {
namespace {

using bench::BenchClock;
using bench::EmitJsonRow;
using bench::GetEnvLong;
using bench::PrintTitle;

SimDynamoOptions InstantDynamo() {
  SimDynamoOptions options;
  options.profile = EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero()};
  options.staleness = StalenessModel{};
  options.txn_call = LatencyModel::Zero();
  return options;
}

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "bench_net: %s: %s\n", what, s.ToString().c_str());
    std::abort();
  }
}

double WallMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string Key(size_t i) { return "net" + std::to_string(i); }

// One commit (1 put) per iteration, in-proc. The alloc column counts heap
// allocations made by the committing thread inside CommitTransaction — the
// §3.3 commit path itself, the number the bench gate holds a ceiling on.
void RunInProcCommit(AftNode& node, long reps) {
  // Uncounted warmup: segment-freelist growth, version-index rehash and
  // key-interner inserts are one-time costs, not per-commit costs — without
  // this, short --smoke runs (3 reps) bill them to the measured
  // transactions and the allocation-ceiling gate jitters.
  for (long r = 0; r < 32; ++r) {
    auto txid = node.StartTransaction();
    Check(txid.status(), "StartTransaction");
    Check(node.Put(*txid, Key(0), "v"), "Put");
    Check(node.CommitTransaction(*txid).status(), "Commit");
  }
  LatencyRecorder lat;
  uint64_t commit_allocs = 0;
  for (long r = 0; r < reps; ++r) {
    auto txid = node.StartTransaction();
    Check(txid.status(), "StartTransaction");
    Check(node.Put(*txid, Key(0), "v"), "Put");
    const auto start = std::chrono::steady_clock::now();
    {
      bench::AllocCountScope allocs;
      Check(node.CommitTransaction(*txid).status(), "Commit");
      commit_allocs += allocs.count();
    }
    lat.RecordMillis(WallMs(start));
  }
  const LatencySummary s = lat.Summarize();
  const double allocs_per_txn = static_cast<double>(commit_allocs) / reps;
  std::printf("  in-proc commit        p50 %7.3f ms   p99 %7.3f ms   %6.1f allocs/txn\n",
              s.median_ms, s.p99_ms, allocs_per_txn);
  bench::EmitJsonRowAllocs("net", "inproc commit", s.median_ms, s.p99_ms, 0.0,
                           static_cast<uint64_t>(reps), allocs_per_txn);
}

// Same workload over loopback TCP. The alloc column here is the CLIENT-side
// cost of one commit RPC (serialize + frame + response decode); the server
// side commits on its own threads and is covered by the in-proc row.
void RunTcpCommit(net::RemoteAftClient& client, long reps) {
  // Same uncounted warmup as the in-proc row: the client's first calls grow
  // its scratch writers and connection-pool state.
  for (long r = 0; r < 32; ++r) {
    auto session = client.StartTransaction();
    Check(session.status(), "StartTransaction");
    Check(client.Put(*session, Key(0), "v"), "Put");
    Check(client.Commit(*session).status(), "Commit");
  }
  LatencyRecorder lat;
  uint64_t commit_allocs = 0;
  for (long r = 0; r < reps; ++r) {
    auto session = client.StartTransaction();
    Check(session.status(), "StartTransaction");
    Check(client.Put(*session, Key(0), "v"), "Put");
    const auto start = std::chrono::steady_clock::now();
    {
      bench::AllocCountScope allocs;
      Check(client.Commit(*session).status(), "Commit");
      commit_allocs += allocs.count();
    }
    lat.RecordMillis(WallMs(start));
  }
  const LatencySummary s = lat.Summarize();
  const double allocs_per_txn = static_cast<double>(commit_allocs) / reps;
  std::printf("  loopback-TCP commit   p50 %7.3f ms   p99 %7.3f ms   %6.1f allocs/txn\n",
              s.median_ms, s.p99_ms, allocs_per_txn);
  bench::EmitJsonRowAllocs("net", "tcp commit", s.median_ms, s.p99_ms, 0.0,
                           static_cast<uint64_t>(reps), allocs_per_txn);
}

// MultiGet fan-out: one request, `keys` keys, both paths.
void RunMultiGet(AftNode& node, net::RemoteAftClient& client, size_t keys, long reps) {
  std::vector<std::string> names;
  for (size_t i = 0; i < keys; ++i) {
    names.push_back(Key(i));
  }
  LatencyRecorder inproc;
  for (long r = 0; r < reps; ++r) {
    auto txid = node.StartTransaction();
    Check(txid.status(), "StartTransaction");
    const auto start = std::chrono::steady_clock::now();
    Check(node.MultiGet(*txid, names).status(), "MultiGet");
    inproc.RecordMillis(WallMs(start));
    Check(node.AbortTransaction(*txid), "Abort");
  }
  LatencyRecorder tcp;
  for (long r = 0; r < reps; ++r) {
    auto session = client.StartTransaction();
    Check(session.status(), "StartTransaction");
    const auto start = std::chrono::steady_clock::now();
    Check(client.MultiGet(*session, names).status(), "MultiGet");
    tcp.RecordMillis(WallMs(start));
    Check(client.Abort(*session), "Abort");
  }
  const LatencySummary si = inproc.Summarize();
  const LatencySummary st = tcp.Summarize();
  std::printf("  multiget %2zu keys      in-proc p50 %7.3f ms   tcp p50 %7.3f ms   tcp p99 %7.3f ms\n",
              keys, si.median_ms, st.median_ms, st.p99_ms);
  EmitJsonRow("net", "inproc multiget " + std::to_string(keys) + "k", si.median_ms, si.p99_ms,
              0.0, static_cast<uint64_t>(reps));
  EmitJsonRow("net", "tcp multiget " + std::to_string(keys) + "k", st.median_ms, st.p99_ms, 0.0,
              static_cast<uint64_t>(reps));
}

// ---------------------------------------------------------------------------
// Closed-loop throughput sweep.

struct TputConfig {
  const char* name;                 // row label
  net::ServerThreading threading;   // server side
  size_t connections_per_endpoint;  // client pool width
  size_t max_inflight;              // client pipelining depth
};

// One closed-loop run: `clients` threads, each issuing `ops_per_client`
// operations back-to-back. Per-op latencies land in `lat`; *elapsed_ms gets
// the wall clock of the whole run (threads started to threads joined).
template <typename PerThreadFn>
void RunClosedLoop(size_t clients, LatencyRecorder& lat, double* elapsed_ms, PerThreadFn fn) {
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto start = std::chrono::steady_clock::now();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&lat, c, &fn] { fn(c, lat); });
  }
  for (auto& t : threads) {
    t.join();
  }
  *elapsed_ms = WallMs(start);
}

void RunThroughputConfig(AftNode& node, const TputConfig& cfg, long ops_per_client,
                         const std::vector<std::string>& keys) {
  net::AftServiceServerOptions server_options;
  server_options.port = 0;
  server_options.threading = cfg.threading;
  net::AftServiceServer server(node, server_options);
  Check(server.Start(), "tput server Start");

  net::RemoteAftClientOptions client_options;
  client_options.connections_per_endpoint = cfg.connections_per_endpoint;
  client_options.max_inflight = cfg.max_inflight;
  net::RemoteAftClient client({server.endpoint()}, client_options);

  std::printf("  --- %s (server=%s, pool=%zu, inflight=%zu) ---\n", cfg.name,
              cfg.threading == net::ServerThreading::kEventLoop ? "event-loop" : "thread-per-conn",
              cfg.connections_per_endpoint, cfg.max_inflight);

  for (size_t clients : {1u, 4u, 16u, 64u}) {
    const uint64_t total_ops = static_cast<uint64_t>(clients) * ops_per_client;

    // Commit workload: each op is one full transaction (start / put / commit).
    double commit_ms = 0;
    LatencyRecorder commit_lat;
    RunClosedLoop(clients, commit_lat, &commit_ms, [&](size_t c, LatencyRecorder& lat) {
      for (long r = 0; r < ops_per_client; ++r) {
        const auto op_start = std::chrono::steady_clock::now();
        auto session = client.StartTransaction();
        Check(session.status(), "tput StartTransaction");
        Check(client.Put(*session, Key(c % keys.size()), "v"), "tput Put");
        Check(client.Commit(*session).status(), "tput Commit");
        lat.RecordMillis(WallMs(op_start));
      }
    });
    const double commit_ops_sec = total_ops / (commit_ms / 1000.0);
    const LatencySummary cs = commit_lat.Summarize();
    std::printf("  %-8s %2zu clients  commit   %9.0f ops/s   p50 %7.3f ms   p99 %7.3f ms\n",
                cfg.name, clients, commit_ops_sec, cs.median_ms, cs.p99_ms);
    EmitJsonRow("net", std::string("tput commit ") + cfg.name + " " + std::to_string(clients) + "c",
                cs.median_ms, cs.p99_ms, commit_ops_sec, total_ops);

    // MultiGet workload: one long-lived txn per client, MultiGet per op.
    double mget_ms = 0;
    LatencyRecorder mget_lat;
    RunClosedLoop(clients, mget_lat, &mget_ms, [&](size_t, LatencyRecorder& lat) {
      auto session = client.StartTransaction();
      Check(session.status(), "tput mget StartTransaction");
      for (long r = 0; r < ops_per_client; ++r) {
        const auto op_start = std::chrono::steady_clock::now();
        Check(client.MultiGet(*session, keys).status(), "tput MultiGet");
        lat.RecordMillis(WallMs(op_start));
      }
      Check(client.Abort(*session), "tput mget Abort");
    });
    const double mget_ops_sec = total_ops / (mget_ms / 1000.0);
    const LatencySummary ms = mget_lat.Summarize();
    std::printf("  %-8s %2zu clients  multiget %9.0f ops/s   p50 %7.3f ms   p99 %7.3f ms\n",
                cfg.name, clients, mget_ops_sec, ms.median_ms, ms.p99_ms);
    EmitJsonRow("net",
                std::string("tput multiget ") + cfg.name + " " + std::to_string(clients) + "c",
                ms.median_ms, ms.p99_ms, mget_ops_sec, total_ops);
  }

  server.Stop();
}

void RunThroughputSweep(AftNode& node, long ops_per_client) {
  PrintTitle("net closed-loop throughput: 1/4/16/64 clients (wall-clock)");
  std::printf("  %ld ops per client per row\n", ops_per_client);

  std::vector<std::string> keys;
  for (size_t i = 0; i < 10; ++i) {
    keys.push_back(Key(i));
  }

  const TputConfig kConfigs[] = {
      {"event", net::ServerThreading::kEventLoop, 4, 32},
      {"thread", net::ServerThreading::kThreadPerConn, 4, 32},
      {"baseline", net::ServerThreading::kThreadPerConn, 1, 1},
  };
  for (const TputConfig& cfg : kConfigs) {
    RunThroughputConfig(node, cfg, ops_per_client, keys);
  }
}

}  // namespace
}  // namespace aft

int main() {
  using namespace aft;

  const long reps = bench::GetEnvLong("AFT_BENCH_REQUESTS", 500);
  bench::PrintTitle("net transport overhead: in-proc vs loopback TCP (wall-clock ms)");
  std::printf("  %ld requests per row\n", reps);

  Clock& clock = bench::BenchClock();
  SimDynamo storage(clock, InstantDynamo());
  AftNodeOptions node_options;
  node_options.service_cores = 0;  // Measure transport, not simulated CPU.
  AftNode node("bench-net", storage, clock, node_options);
  Check(node.Start(), "node Start");

  net::AftServiceServer server(node);
  Check(server.Start(), "server Start");
  net::RemoteAftClient client({server.endpoint()});

  // Seed the keys the MultiGet sweep reads.
  {
    auto txid = node.StartTransaction();
    Check(txid.status(), "seed StartTransaction");
    for (size_t i = 0; i < 10; ++i) {
      Check(node.Put(*txid, Key(i), std::string(512, 's')), "seed Put");
    }
    Check(node.CommitTransaction(*txid).status(), "seed Commit");
  }

  RunInProcCommit(node, reps);
  RunTcpCommit(client, reps);
  for (size_t keys : {1, 5, 10}) {
    RunMultiGet(node, client, keys, reps);
  }

  const long tput_ops =
      bench::GetEnvLong("AFT_BENCH_TPUT_OPS", reps < 200 ? reps : 200);
  RunThroughputSweep(node, tput_ops);

  std::printf("\n  server: %llu requests over %llu connections\n",
              static_cast<unsigned long long>(server.stats().requests_served.load()),
              static_cast<unsigned long long>(server.stats().connections_accepted.load()));
  server.Stop();
  return 0;
}
