// Transport microbench: what does the real TCP boundary cost?
//
// Runs the same commit and MultiGet workloads twice — directly against an
// AftNode (in-proc, the original call path) and through AftServiceServer +
// RemoteAftClient over loopback TCP (framing, CRC, two socket hops per op) —
// and reports p50/p99 per path. Storage latencies are zeroed so the rows
// isolate pure shim + wire overhead, and all numbers here are WALL-CLOCK
// milliseconds (the wire is real hardware; the simulated time scale does not
// apply to it).

#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/stats.h"
#include "src/core/aft_node.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/storage/sim_dynamo.h"

namespace aft {
namespace {

using bench::BenchClock;
using bench::EmitJsonRow;
using bench::GetEnvLong;
using bench::PrintTitle;

SimDynamoOptions InstantDynamo() {
  SimDynamoOptions options;
  options.profile = EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero()};
  options.staleness = StalenessModel{};
  options.txn_call = LatencyModel::Zero();
  return options;
}

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "bench_net: %s: %s\n", what, s.ToString().c_str());
    std::abort();
  }
}

double WallMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string Key(size_t i) { return "net" + std::to_string(i); }

// One commit (1 put) per iteration, in-proc.
void RunInProcCommit(AftNode& node, long reps) {
  LatencyRecorder lat;
  for (long r = 0; r < reps; ++r) {
    auto txid = node.StartTransaction();
    Check(txid.status(), "StartTransaction");
    Check(node.Put(*txid, Key(0), "v"), "Put");
    const auto start = std::chrono::steady_clock::now();
    Check(node.CommitTransaction(*txid).status(), "Commit");
    lat.RecordMillis(WallMs(start));
  }
  const LatencySummary s = lat.Summarize();
  std::printf("  in-proc commit        p50 %7.3f ms   p99 %7.3f ms\n", s.median_ms, s.p99_ms);
  EmitJsonRow("net", "inproc commit", s.median_ms, s.p99_ms, 0.0, static_cast<uint64_t>(reps));
}

void RunTcpCommit(net::RemoteAftClient& client, long reps) {
  LatencyRecorder lat;
  for (long r = 0; r < reps; ++r) {
    auto session = client.StartTransaction();
    Check(session.status(), "StartTransaction");
    Check(client.Put(*session, Key(0), "v"), "Put");
    const auto start = std::chrono::steady_clock::now();
    Check(client.Commit(*session).status(), "Commit");
    lat.RecordMillis(WallMs(start));
  }
  const LatencySummary s = lat.Summarize();
  std::printf("  loopback-TCP commit   p50 %7.3f ms   p99 %7.3f ms\n", s.median_ms, s.p99_ms);
  EmitJsonRow("net", "tcp commit", s.median_ms, s.p99_ms, 0.0, static_cast<uint64_t>(reps));
}

// MultiGet fan-out: one request, `keys` keys, both paths.
void RunMultiGet(AftNode& node, net::RemoteAftClient& client, size_t keys, long reps) {
  std::vector<std::string> names;
  for (size_t i = 0; i < keys; ++i) {
    names.push_back(Key(i));
  }
  LatencyRecorder inproc;
  for (long r = 0; r < reps; ++r) {
    auto txid = node.StartTransaction();
    Check(txid.status(), "StartTransaction");
    const auto start = std::chrono::steady_clock::now();
    Check(node.MultiGet(*txid, names).status(), "MultiGet");
    inproc.RecordMillis(WallMs(start));
    Check(node.AbortTransaction(*txid), "Abort");
  }
  LatencyRecorder tcp;
  for (long r = 0; r < reps; ++r) {
    auto session = client.StartTransaction();
    Check(session.status(), "StartTransaction");
    const auto start = std::chrono::steady_clock::now();
    Check(client.MultiGet(*session, names).status(), "MultiGet");
    tcp.RecordMillis(WallMs(start));
    Check(client.Abort(*session), "Abort");
  }
  const LatencySummary si = inproc.Summarize();
  const LatencySummary st = tcp.Summarize();
  std::printf("  multiget %2zu keys      in-proc p50 %7.3f ms   tcp p50 %7.3f ms   tcp p99 %7.3f ms\n",
              keys, si.median_ms, st.median_ms, st.p99_ms);
  EmitJsonRow("net", "inproc multiget " + std::to_string(keys) + "k", si.median_ms, si.p99_ms,
              0.0, static_cast<uint64_t>(reps));
  EmitJsonRow("net", "tcp multiget " + std::to_string(keys) + "k", st.median_ms, st.p99_ms, 0.0,
              static_cast<uint64_t>(reps));
}

}  // namespace
}  // namespace aft

int main() {
  using namespace aft;

  const long reps = bench::GetEnvLong("AFT_BENCH_REQUESTS", 500);
  bench::PrintTitle("net transport overhead: in-proc vs loopback TCP (wall-clock ms)");
  std::printf("  %ld requests per row\n", reps);

  Clock& clock = bench::BenchClock();
  SimDynamo storage(clock, InstantDynamo());
  AftNodeOptions node_options;
  node_options.service_cores = 0;  // Measure transport, not simulated CPU.
  AftNode node("bench-net", storage, clock, node_options);
  Check(node.Start(), "node Start");

  net::AftServiceServer server(node);
  Check(server.Start(), "server Start");
  net::RemoteAftClient client({server.endpoint()});

  // Seed the keys the MultiGet sweep reads.
  {
    auto txid = node.StartTransaction();
    Check(txid.status(), "seed StartTransaction");
    for (size_t i = 0; i < 10; ++i) {
      Check(node.Put(*txid, Key(i), std::string(512, 's')), "seed Put");
    }
    Check(node.CommitTransaction(*txid).status(), "seed Commit");
  }

  RunInProcCommit(node, reps);
  RunTcpCommit(client, reps);
  for (size_t keys : {1, 5, 10}) {
    RunMultiGet(node, client, keys, reps);
  }

  std::printf("\n  server: %llu requests over %llu connections\n",
              static_cast<unsigned long long>(server.stats().requests_served.load()),
              static_cast<unsigned long long>(server.stats().connections_accepted.load()));
  server.Stop();
  return 0;
}
