// Transport microbench: what does the real TCP boundary cost?
//
// Part 1 (latency): runs the same commit and MultiGet workloads twice —
// directly against an AftNode (in-proc, the original call path) and through
// AftServiceServer + RemoteAftClient over loopback TCP (framing, CRC, two
// socket hops per op) — and reports p50/p99 per path.
//
// Part 2 (throughput): closed-loop multi-client sweep at 1/4/16/64 client
// threads against three transport configurations:
//   * event    — epoll event-loop server, pooled + pipelined client;
//   * thread   — thread-per-connection server, pooled + pipelined client;
//   * baseline — thread-per-connection server, ONE connection, single-flight
//                (the pre-pipelining transport; the acceptance yardstick).
// Each row reports ops/sec plus per-op p50/p99.
//
// Storage latencies are zeroed so the rows isolate pure shim + wire overhead,
// and all numbers here are WALL-CLOCK milliseconds (the wire is real
// hardware; the simulated time scale does not apply to it).
//
// Knobs: AFT_BENCH_REQUESTS (latency reps), AFT_BENCH_TPUT_OPS (closed-loop
// ops per client; defaults to min(AFT_BENCH_REQUESTS, 200) so --smoke stays
// fast).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <random>
#include <string>
#include <thread>
#include <vector>

// Count heap allocations on the measuring thread (allocs/txn columns).
#define AFT_BENCH_COUNT_ALLOCS
#include "bench/bench_common.h"
#include "bench/stage_breakdown.h"
#include "src/common/stats.h"
#include "src/core/aft_node.h"
#include "src/net/client.h"
#include "src/net/server.h"
#include "src/storage/sim_dynamo.h"

namespace aft {
namespace {

using bench::BenchClock;
using bench::EmitJsonRow;
using bench::GetEnvLong;
using bench::PrintTitle;

SimDynamoOptions InstantDynamo() {
  SimDynamoOptions options;
  options.profile = EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero()};
  options.staleness = StalenessModel{};
  options.txn_call = LatencyModel::Zero();
  return options;
}

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "bench_net: %s: %s\n", what, s.ToString().c_str());
    std::abort();
  }
}

double WallMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string Key(size_t i) { return "net" + std::to_string(i); }

// One commit (1 put) per iteration, in-proc. The alloc column counts heap
// allocations made by the committing thread inside CommitTransaction — the
// §3.3 commit path itself, the number the bench gate holds a ceiling on.
void RunInProcCommit(AftNode& node, long reps) {
  // Uncounted warmup: segment-freelist growth, version-index rehash and
  // key-interner inserts are one-time costs, not per-commit costs — without
  // this, short --smoke runs (3 reps) bill them to the measured
  // transactions and the allocation-ceiling gate jitters.
  for (long r = 0; r < 32; ++r) {
    auto txid = node.StartTransaction();
    Check(txid.status(), "StartTransaction");
    Check(node.Put(*txid, Key(0), "v"), "Put");
    Check(node.CommitTransaction(*txid).status(), "Commit");
  }
  LatencyRecorder lat;
  uint64_t commit_allocs = 0;
  for (long r = 0; r < reps; ++r) {
    auto txid = node.StartTransaction();
    Check(txid.status(), "StartTransaction");
    Check(node.Put(*txid, Key(0), "v"), "Put");
    const auto start = std::chrono::steady_clock::now();
    {
      bench::AllocCountScope allocs;
      Check(node.CommitTransaction(*txid).status(), "Commit");
      commit_allocs += allocs.count();
    }
    lat.RecordMillis(WallMs(start));
  }
  const LatencySummary s = lat.Summarize();
  const double allocs_per_txn = static_cast<double>(commit_allocs) / reps;
  std::printf("  in-proc commit        p50 %7.3f ms   p99 %7.3f ms   %6.1f allocs/txn\n",
              s.median_ms, s.p99_ms, allocs_per_txn);
  bench::EmitJsonRowAllocs("net", "inproc commit", s.median_ms, s.p99_ms, 0.0,
                           static_cast<uint64_t>(reps), allocs_per_txn);
}

// Same workload over loopback TCP. The alloc column here is the CLIENT-side
// cost of one commit RPC (serialize + frame + response decode); the server
// side commits on its own threads and is covered by the in-proc row.
void RunTcpCommit(net::RemoteAftClient& client, long reps) {
  // Same uncounted warmup as the in-proc row: the client's first calls grow
  // its scratch writers and connection-pool state.
  for (long r = 0; r < 32; ++r) {
    auto session = client.StartTransaction();
    Check(session.status(), "StartTransaction");
    Check(client.Put(*session, Key(0), "v"), "Put");
    Check(client.Commit(*session).status(), "Commit");
  }
  LatencyRecorder lat;
  uint64_t commit_allocs = 0;
  for (long r = 0; r < reps; ++r) {
    auto session = client.StartTransaction();
    Check(session.status(), "StartTransaction");
    Check(client.Put(*session, Key(0), "v"), "Put");
    const auto start = std::chrono::steady_clock::now();
    {
      bench::AllocCountScope allocs;
      Check(client.Commit(*session).status(), "Commit");
      commit_allocs += allocs.count();
    }
    lat.RecordMillis(WallMs(start));
  }
  const LatencySummary s = lat.Summarize();
  const double allocs_per_txn = static_cast<double>(commit_allocs) / reps;
  std::printf("  loopback-TCP commit   p50 %7.3f ms   p99 %7.3f ms   %6.1f allocs/txn\n",
              s.median_ms, s.p99_ms, allocs_per_txn);
  bench::EmitJsonRowAllocs("net", "tcp commit", s.median_ms, s.p99_ms, 0.0,
                           static_cast<uint64_t>(reps), allocs_per_txn);
}

// MultiGet fan-out: one request, `keys` keys, both paths.
void RunMultiGet(AftNode& node, net::RemoteAftClient& client, size_t keys, long reps) {
  std::vector<std::string> names;
  for (size_t i = 0; i < keys; ++i) {
    names.push_back(Key(i));
  }
  LatencyRecorder inproc;
  for (long r = 0; r < reps; ++r) {
    auto txid = node.StartTransaction();
    Check(txid.status(), "StartTransaction");
    const auto start = std::chrono::steady_clock::now();
    Check(node.MultiGet(*txid, names).status(), "MultiGet");
    inproc.RecordMillis(WallMs(start));
    Check(node.AbortTransaction(*txid), "Abort");
  }
  LatencyRecorder tcp;
  for (long r = 0; r < reps; ++r) {
    auto session = client.StartTransaction();
    Check(session.status(), "StartTransaction");
    const auto start = std::chrono::steady_clock::now();
    Check(client.MultiGet(*session, names).status(), "MultiGet");
    tcp.RecordMillis(WallMs(start));
    Check(client.Abort(*session), "Abort");
  }
  const LatencySummary si = inproc.Summarize();
  const LatencySummary st = tcp.Summarize();
  std::printf("  multiget %2zu keys      in-proc p50 %7.3f ms   tcp p50 %7.3f ms   tcp p99 %7.3f ms\n",
              keys, si.median_ms, st.median_ms, st.p99_ms);
  EmitJsonRow("net", "inproc multiget " + std::to_string(keys) + "k", si.median_ms, si.p99_ms,
              0.0, static_cast<uint64_t>(reps));
  EmitJsonRow("net", "tcp multiget " + std::to_string(keys) + "k", st.median_ms, st.p99_ms, 0.0,
              static_cast<uint64_t>(reps));
}

// ---------------------------------------------------------------------------
// Closed-loop throughput sweep.

struct TputConfig {
  const char* name;                 // row label
  net::ServerThreading threading;   // server side
  size_t connections_per_endpoint;  // client pool width
  size_t max_inflight;              // client pipelining depth
};

// One closed-loop run: `clients` threads, each issuing `ops_per_client`
// operations back-to-back. Per-op latencies land in `lat`; *elapsed_ms gets
// the wall clock of the whole run (threads started to threads joined).
template <typename PerThreadFn>
void RunClosedLoop(size_t clients, LatencyRecorder& lat, double* elapsed_ms, PerThreadFn fn) {
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto start = std::chrono::steady_clock::now();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&lat, c, &fn] { fn(c, lat); });
  }
  for (auto& t : threads) {
    t.join();
  }
  *elapsed_ms = WallMs(start);
}

void RunThroughputConfig(AftNode& node, const TputConfig& cfg, long ops_per_client,
                         const std::vector<std::string>& keys) {
  net::AftServiceServerOptions server_options;
  server_options.port = 0;
  server_options.threading = cfg.threading;
  net::AftServiceServer server(node, server_options);
  Check(server.Start(), "tput server Start");

  net::RemoteAftClientOptions client_options;
  client_options.connections_per_endpoint = cfg.connections_per_endpoint;
  client_options.max_inflight = cfg.max_inflight;
  net::RemoteAftClient client({server.endpoint()}, client_options);

  std::printf("  --- %s (server=%s, pool=%zu, inflight=%zu) ---\n", cfg.name,
              cfg.threading == net::ServerThreading::kEventLoop ? "event-loop" : "thread-per-conn",
              cfg.connections_per_endpoint, cfg.max_inflight);

  for (size_t clients : {1u, 4u, 16u, 64u}) {
    const uint64_t total_ops = static_cast<uint64_t>(clients) * ops_per_client;

    // Commit workload: each op is one full transaction (start / put / commit).
    double commit_ms = 0;
    LatencyRecorder commit_lat;
    RunClosedLoop(clients, commit_lat, &commit_ms, [&](size_t c, LatencyRecorder& lat) {
      for (long r = 0; r < ops_per_client; ++r) {
        const auto op_start = std::chrono::steady_clock::now();
        auto session = client.StartTransaction();
        Check(session.status(), "tput StartTransaction");
        Check(client.Put(*session, Key(c % keys.size()), "v"), "tput Put");
        Check(client.Commit(*session).status(), "tput Commit");
        lat.RecordMillis(WallMs(op_start));
      }
    });
    const double commit_ops_sec = total_ops / (commit_ms / 1000.0);
    const LatencySummary cs = commit_lat.Summarize();
    std::printf("  %-8s %2zu clients  commit   %9.0f ops/s   p50 %7.3f ms   p99 %7.3f ms\n",
                cfg.name, clients, commit_ops_sec, cs.median_ms, cs.p99_ms);
    EmitJsonRow("net", std::string("tput commit ") + cfg.name + " " + std::to_string(clients) + "c",
                cs.median_ms, cs.p99_ms, commit_ops_sec, total_ops);

    // MultiGet workload: one long-lived txn per client, MultiGet per op.
    double mget_ms = 0;
    LatencyRecorder mget_lat;
    RunClosedLoop(clients, mget_lat, &mget_ms, [&](size_t, LatencyRecorder& lat) {
      auto session = client.StartTransaction();
      Check(session.status(), "tput mget StartTransaction");
      for (long r = 0; r < ops_per_client; ++r) {
        const auto op_start = std::chrono::steady_clock::now();
        Check(client.MultiGet(*session, keys).status(), "tput MultiGet");
        lat.RecordMillis(WallMs(op_start));
      }
      Check(client.Abort(*session), "tput mget Abort");
    });
    const double mget_ops_sec = total_ops / (mget_ms / 1000.0);
    const LatencySummary ms = mget_lat.Summarize();
    std::printf("  %-8s %2zu clients  multiget %9.0f ops/s   p50 %7.3f ms   p99 %7.3f ms\n",
                cfg.name, clients, mget_ops_sec, ms.median_ms, ms.p99_ms);
    EmitJsonRow("net",
                std::string("tput multiget ") + cfg.name + " " + std::to_string(clients) + "c",
                ms.median_ms, ms.p99_ms, mget_ops_sec, total_ops);
  }

  server.Stop();
}

// ---------------------------------------------------------------------------
// Cross-transaction commit batching: Zipfian hot-key contended RMW.
//
// The batching comparison needs the *real* DynamoDB latency profile (zeroed
// latencies make every storage round free, so there is nothing to coalesce)
// plus a bounded connection pool: with a handful of request slots and 16+
// closed-loop committers, the unbatched protocol queues 2 rounds per
// transaction on the pool while the batcher fuses every queued committer
// into one shared round. Workload is a contended read-modify-write — each
// op reads a Zipfian-hot key, overwrites it, commits — the serverless
// counter/session pattern the paper's Figure 7 stresses. Rows are named
// "tput zipf batched|unbatched <N>c" for the bench_gate stage-3 ratio;
// stage 1 skips them (no "baseline" config to pair with).

// Inverse-CDF Zipfian sampler over `n` key ranks; rank 0 is the hottest.
class ZipfianKeys {
 public:
  ZipfianKeys(size_t n, double s) {
    cdf_.reserve(n);
    double sum = 0;
    for (size_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), s);
      cdf_.push_back(sum);
    }
    for (double& c : cdf_) {
      c /= sum;
    }
  }

  size_t Sample(std::mt19937_64& rng) const {
    const double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    return static_cast<size_t>(std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

void RunCommitBatchingConfig(bool batching, size_t clients, long ops_per_client,
                             const ZipfianKeys& zipf, size_t key_space, size_t pool_slots) {
  // Fresh engine per config so batched and unbatched runs see identical
  // initial state and identical pool pressure.
  SimDynamo storage(BenchClock(), SimDynamoOptions{});
  storage.SetMaxConcurrentRequests(pool_slots);
  AftNodeOptions node_options;
  node_options.service_cores = 0;  // Measure protocol rounds, not simulated CPU.
  node_options.enable_commit_batching = batching;
  AftNode node("bench-batch", storage, BenchClock(), node_options);
  Check(node.Start(), "batch node Start");

  // Seed the key space so the RMW reads mostly hit.
  {
    auto txid = node.StartTransaction();
    Check(txid.status(), "batch seed StartTransaction");
    for (size_t i = 0; i < key_space; ++i) {
      Check(node.Put(*txid, "zipf" + std::to_string(i), "0"), "batch seed Put");
    }
    Check(node.CommitTransaction(*txid).status(), "batch seed Commit");
  }

  const uint64_t total_ops = static_cast<uint64_t>(clients) * ops_per_client;
  double elapsed_ms = 0;
  LatencyRecorder lat;
  RunClosedLoop(clients, lat, &elapsed_ms, [&](size_t c, LatencyRecorder& rec) {
    std::mt19937_64 rng(0x5eed0000 + c);
    for (long r = 0; r < ops_per_client; ++r) {
      const auto op_start = std::chrono::steady_clock::now();
      auto txid = node.StartTransaction();
      Check(txid.status(), "batch StartTransaction");
      const std::string key = "zipf" + std::to_string(zipf.Sample(rng));
      // Contended RMW: read the hot key (kNotFound only races the seed),
      // overwrite it, commit. The value encodes writer+round for debugging.
      (void)node.Get(*txid, key);
      Check(node.Put(*txid, key, std::to_string(c) + ":" + std::to_string(r)), "batch Put");
      Check(node.CommitTransaction(*txid).status(), "batch Commit");
      rec.RecordMillis(WallMs(op_start));
    }
  });
  const double ops_sec = total_ops / (elapsed_ms / 1000.0);
  const LatencySummary s = lat.Summarize();
  const char* label = batching ? "batched" : "unbatched";
  std::printf("  %-9s %2zu clients  rmw-commit %9.0f ops/s   p50 %7.3f ms   p99 %7.3f ms\n",
              label, clients, ops_sec, s.median_ms, s.p99_ms);
  EmitJsonRow("net",
              std::string("tput zipf ") + label + " " + std::to_string(clients) + "c",
              s.median_ms, s.p99_ms, ops_sec, total_ops);
}

void RunCommitBatchingSweep(long ops_per_client) {
  PrintTitle("commit batching: Zipfian hot-key RMW, batched vs unbatched (wall-clock)");
  constexpr size_t kKeySpace = 64;     // Zipf s=0.99 -> ~25% of ops hit rank 0.
  constexpr size_t kPoolSlots = 4;     // Bounded connection pool (shared resource).
  std::printf("  %ld ops per client per row, %zu keys, pool=%zu\n", ops_per_client, kKeySpace,
              kPoolSlots);
  const ZipfianKeys zipf(kKeySpace, 0.99);
  for (size_t clients : {16u, 64u}) {
    for (bool batching : {false, true}) {
      RunCommitBatchingConfig(batching, clients, ops_per_client, zipf, kKeySpace, kPoolSlots);
    }
  }
}

void RunThroughputSweep(AftNode& node, long ops_per_client) {
  PrintTitle("net closed-loop throughput: 1/4/16/64 clients (wall-clock)");
  std::printf("  %ld ops per client per row\n", ops_per_client);

  std::vector<std::string> keys;
  for (size_t i = 0; i < 10; ++i) {
    keys.push_back(Key(i));
  }

  const TputConfig kConfigs[] = {
      {"event", net::ServerThreading::kEventLoop, 4, 32},
      {"thread", net::ServerThreading::kThreadPerConn, 4, 32},
      {"baseline", net::ServerThreading::kThreadPerConn, 1, 1},
  };
  for (const TputConfig& cfg : kConfigs) {
    RunThroughputConfig(node, cfg, ops_per_client, keys);
  }
}

}  // namespace
}  // namespace aft

int main() {
  using namespace aft;

  const long reps = bench::GetEnvLong("AFT_BENCH_REQUESTS", 500);
  bench::PrintTitle("net transport overhead: in-proc vs loopback TCP (wall-clock ms)");
  std::printf("  %ld requests per row\n", reps);

  Clock& clock = bench::BenchClock();
  SimDynamo storage(clock, InstantDynamo());
  AftNodeOptions node_options;
  node_options.service_cores = 0;  // Measure transport, not simulated CPU.
  AftNode node("bench-net", storage, clock, node_options);
  Check(node.Start(), "node Start");

  net::AftServiceServer server(node);
  Check(server.Start(), "server Start");
  net::RemoteAftClient client({server.endpoint()});

  // Seed the keys the MultiGet sweep reads.
  {
    auto txid = node.StartTransaction();
    Check(txid.status(), "seed StartTransaction");
    for (size_t i = 0; i < 10; ++i) {
      Check(node.Put(*txid, Key(i), std::string(512, 's')), "seed Put");
    }
    Check(node.CommitTransaction(*txid).status(), "seed Commit");
  }

  bench::StageBreakdown breakdown("net", "bench-net");
  RunInProcCommit(node, reps);
  breakdown.Report("inproc commit");
  RunTcpCommit(client, reps);
  for (size_t keys : {1, 5, 10}) {
    RunMultiGet(node, client, keys, reps);
  }

  const long tput_ops =
      bench::GetEnvLong("AFT_BENCH_TPUT_OPS", reps < 200 ? reps : 200);
  breakdown.Report("tcp commit");  // Window: the TCP commit rows above.
  RunThroughputSweep(node, tput_ops);
  breakdown.Report("tput commit");
  RunCommitBatchingSweep(tput_ops);

  std::printf("\n  server: %llu requests over %llu connections\n",
              static_cast<unsigned long long>(server.stats().requests_served.load()),
              static_cast<unsigned long long>(server.stats().connections_accepted.load()));
  server.Stop();
  return 0;
}
