// Microbenchmarks (google-benchmark) for AFT's hot-path primitives: the
// Algorithm 1 version-selection loop, supersedence checks, record codecs,
// the key version index and the Zipf sampler. These quantify the per-op CPU
// cost that underlies the node service-time model.

#include <benchmark/benchmark.h>

#include "src/common/zipf.h"
#include "src/core/read_algorithm.h"

namespace aft {
namespace {

CommitRecordPtr MakeRecord(Rng& rng, int64_t ts, std::vector<std::string> keys) {
  return std::make_shared<const CommitRecord>(CommitRecord{TxnId(ts, Uuid::Random(rng)), keys});
}

// Algorithm 1 with a configurable number of versions per key and read-set size.
void BM_AtomicReadSelect(benchmark::State& state) {
  const int versions = static_cast<int>(state.range(0));
  const int read_set_size = static_cast<int>(state.range(1));
  Rng rng(1);
  KeyVersionIndex index;
  CommitSetCache commits;
  // `versions` committed versions of the target key, each cowriting 3 keys.
  for (int v = 1; v <= versions; ++v) {
    auto record = MakeRecord(rng, v * 10,
                             {"target", "a" + std::to_string(v % 5), "b" + std::to_string(v % 7)});
    commits.Add(record);
    index.AddCommit(*record);
  }
  std::unordered_map<std::string, ReadSetEntry> read_set;
  for (int i = 0; i < read_set_size; ++i) {
    auto record = MakeRecord(rng, 5, {"r" + std::to_string(i)});
    commits.Add(record);
    index.AddCommit(*record);
    read_set["r" + std::to_string(i)] = ReadSetEntry{record->id, record};
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectAtomicReadVersion("target", read_set, index, commits));
  }
}
BENCHMARK(BM_AtomicReadSelect)->Args({1, 0})->Args({8, 4})->Args({64, 16})->Args({256, 64});

void BM_IsTransactionSuperseded(benchmark::State& state) {
  Rng rng(2);
  KeyVersionIndex index;
  std::vector<std::string> keys;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    keys.push_back("k" + std::to_string(i));
  }
  CommitRecord old_record{TxnId(10, Uuid::Random(rng)), keys};
  index.AddCommit(old_record);
  CommitRecord new_record{TxnId(20, Uuid::Random(rng)), keys};
  index.AddCommit(new_record);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsTransactionSuperseded(old_record, index));
  }
}
BENCHMARK(BM_IsTransactionSuperseded)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_CommitRecordRoundTrip(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::string> keys;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    keys.push_back("key" + std::to_string(i));
  }
  const CommitRecord record{TxnId(123456789, Uuid::Random(rng)), keys};
  for (auto _ : state) {
    const std::string bytes = record.Serialize();
    benchmark::DoNotOptimize(CommitRecord::Deserialize(bytes));
  }
}
BENCHMARK(BM_CommitRecordRoundTrip)->Arg(1)->Arg(8)->Arg(32);

void BM_VersionedValueRoundTrip(benchmark::State& state) {
  Rng rng(4);
  const VersionedValue value{TxnId(1, Uuid::Random(rng)),
                             {"k1", "k2", "k3"},
                             std::string(static_cast<size_t>(state.range(0)), 'x')};
  for (auto _ : state) {
    const std::string bytes = value.Serialize();
    benchmark::DoNotOptimize(VersionedValue::Deserialize(bytes));
  }
}
BENCHMARK(BM_VersionedValueRoundTrip)->Arg(256)->Arg(4096)->Arg(65536);

void BM_KeyVersionIndexAdd(benchmark::State& state) {
  Rng rng(5);
  int64_t ts = 1;
  KeyVersionIndex index;
  for (auto _ : state) {
    CommitRecord record{TxnId(ts++, Uuid::Random(rng)),
                        {"a" + std::to_string(ts % 100), "b" + std::to_string(ts % 37)}};
    index.AddCommit(record);
  }
}
BENCHMARK(BM_KeyVersionIndexAdd);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(6);
  ZipfSampler zipf(100000, static_cast<double>(state.range(0)) / 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(0)->Arg(10)->Arg(15)->Arg(20);

}  // namespace
}  // namespace aft

BENCHMARK_MAIN();
