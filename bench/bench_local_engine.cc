// LocalEngine microbench: the durable WAL-backed engine under REAL I/O.
//
// Unlike the simulated-engine benches, every number here is wall-clock
// against an actual directory of log files — writev, fdatasync, pread. Rows:
//
//   * put / get            — raw engine op latency (one durable record per
//                            put; one pread per get).
//   * local commit         — a full AFT CommitTransaction over the engine:
//                            the §3.3 barrier (version flush, fsync, commit
//                            record, fsync) on real storage. Carries
//                            allocs_per_txn, gated by tools/bench_gate.sh
//                            just like the in-proc sim row — the durable
//                            path must stay allocation-free too.
//   * group commit Nw      — N closed-loop writers; the fsyncs/txn column
//                            shows the group-commit latch sharing one
//                            fdatasync across concurrent writers.
//   * reopen replay        — LocalEngine::Open over the directory the rows
//                            above produced: crash-recovery replay speed.
//
// Numbers depend on what backs the data dir (tmpfs vs a real disk — fsync on
// tmpfs is nearly free). The alloc column is machine-independent either way.
//
// Knobs: AFT_BENCH_REQUESTS (latency reps), AFT_BENCH_TPUT_OPS (per-writer
// ops in the group-commit sweep), AFT_BENCH_DATA_DIR (data directory; default
// a fresh /tmp mkdtemp, removed on exit).

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

// Count heap allocations on the measuring thread (allocs/txn column).
#define AFT_BENCH_COUNT_ALLOCS
#include "bench/bench_common.h"
#include "bench/stage_breakdown.h"
#include "src/common/clock.h"
#include "src/common/stats.h"
#include "src/core/aft_node.h"
#include "src/storage/local_engine.h"

namespace aft {
namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "bench_local_engine: %s: %s\n", what, s.ToString().c_str());
    std::abort();
  }
}

double WallMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

// Raw engine ops: one durable put / one pread get per iteration.
void RunRawOps(LocalEngine& engine, long reps) {
  const std::string value(128, 'v');
  LatencyRecorder put_lat;
  for (long r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    Check(engine.Put("raw" + std::to_string(r % 64), value), "Put");
    put_lat.RecordMillis(WallMs(start));
  }
  LatencyRecorder get_lat;
  for (long r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    Check(engine.Get("raw" + std::to_string(r % 64)).status(), "Get");
    get_lat.RecordMillis(WallMs(start));
  }
  const LatencySummary put_s = put_lat.Summarize();
  const LatencySummary get_s = get_lat.Summarize();
  std::printf("  put (128 B, durable)  p50 %7.3f ms   p99 %7.3f ms\n", put_s.median_ms,
              put_s.p99_ms);
  std::printf("  get (pread)           p50 %7.3f ms   p99 %7.3f ms\n", get_s.median_ms,
              get_s.p99_ms);
  bench::EmitJsonRow("local_engine", "put", put_s.median_ms, put_s.p99_ms, 0.0,
                     static_cast<uint64_t>(reps));
  bench::EmitJsonRow("local_engine", "get", get_s.median_ms, get_s.p99_ms, 0.0,
                     static_cast<uint64_t>(reps));
}

// One commit (1 put) per iteration through a real AftNode. Mirrors
// bench_net's "inproc commit" row, but the flush underneath is writev +
// fdatasync instead of a simulated map. Returns allocs/txn for the gate.
double RunCommit(AftNode& node, long reps) {
  // Uncounted warmup (same rationale as bench_net): freelist growth, index
  // rehash and interner inserts are one-time costs, not per-commit costs.
  for (long r = 0; r < 32; ++r) {
    auto txid = node.StartTransaction();
    Check(txid.status(), "StartTransaction");
    Check(node.Put(*txid, "commit-key", "v"), "Put");
    Check(node.CommitTransaction(*txid).status(), "Commit");
  }
  LatencyRecorder lat;
  uint64_t commit_allocs = 0;
  for (long r = 0; r < reps; ++r) {
    auto txid = node.StartTransaction();
    Check(txid.status(), "StartTransaction");
    Check(node.Put(*txid, "commit-key", "v"), "Put");
    const auto start = std::chrono::steady_clock::now();
    {
      bench::AllocCountScope allocs;
      Check(node.CommitTransaction(*txid).status(), "Commit");
      commit_allocs += allocs.count();
    }
    lat.RecordMillis(WallMs(start));
  }
  const LatencySummary s = lat.Summarize();
  const double allocs_per_txn = static_cast<double>(commit_allocs) / reps;
  std::printf("  local commit          p50 %7.3f ms   p99 %7.3f ms   %6.1f allocs/txn\n",
              s.median_ms, s.p99_ms, allocs_per_txn);
  bench::EmitJsonRowAllocs("local_engine", "local commit", s.median_ms, s.p99_ms, 0.0,
                           static_cast<uint64_t>(reps), allocs_per_txn);
  return allocs_per_txn;
}

// N closed-loop writers hammering Put: the group-commit latch should retire
// many writers per fdatasync once there is real concurrency.
void RunGroupCommitSweep(LocalEngine& engine, long ops_per_writer) {
  for (int writers : {1, 4, 16}) {
    const Wal::Stats before = engine.wal_stats();
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    LatencyRecorder lat;
    Mutex lat_mu;
    for (int w = 0; w < writers; ++w) {
      threads.emplace_back([&, w] {
        LatencyRecorder local;
        const std::string value(128, 'g');
        for (long i = 0; i < ops_per_writer; ++i) {
          const auto op_start = std::chrono::steady_clock::now();
          Check(engine.Put("w" + std::to_string(w) + "-" + std::to_string(i), value), "Put");
          local.RecordMillis(WallMs(op_start));
        }
        MutexLock lock(lat_mu);
        lat.Merge(local);
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
    const double elapsed_ms = WallMs(start);
    const Wal::Stats after = engine.wal_stats();
    const uint64_t ops = static_cast<uint64_t>(writers) * ops_per_writer;
    const uint64_t fsyncs = after.fsyncs - before.fsyncs;
    const double tput = elapsed_ms > 0 ? 1000.0 * ops / elapsed_ms : 0;
    const LatencySummary s = lat.Summarize();
    std::printf("  group commit %2dw      p50 %7.3f ms   p99 %7.3f ms   %8.0f put/s   %.2f fsyncs/txn\n",
                writers, s.median_ms, s.p99_ms, tput,
                ops > 0 ? static_cast<double>(fsyncs) / ops : 0);
    bench::EmitJsonRow("local_engine", "group commit " + std::to_string(writers) + "w",
                       s.median_ms, s.p99_ms, tput, ops);
  }
}

// N closed-loop committers through ONE AftNode over the engine: full AFT
// transactions instead of raw puts. The protocol-level commit batcher
// (src/core/commit_batcher.h) fuses every queued member's data versions AND
// commit record into one WAL append with one group-committed fsync per
// round, so fsyncs/txn falls toward 1/batch-size — below the 0.13 the
// WAL-level latch alone measured at 16 writers (PR 8), because one fused
// round now covers whole transactions, not single puts.
void RunAftCommitSweep(LocalEngine& engine, long ops_per_writer) {
  RealClock& clock = RealClock::Default();
  AftNodeOptions node_options;
  node_options.service_cores = 0;  // Measure real I/O fusion, not simulated CPU.
  AftNode node("bench-local-batch", engine, clock, node_options);
  Check(node.Start(), "batch node Start");
  bench::StageBreakdown breakdown("local_engine", "bench-local-batch");
  for (int writers : {1, 4, 16}) {
    const Wal::Stats before = engine.wal_stats();
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    LatencyRecorder lat;
    Mutex lat_mu;
    for (int w = 0; w < writers; ++w) {
      threads.emplace_back([&, w] {
        LatencyRecorder local;
        const std::string value(128, 'a');
        for (long i = 0; i < ops_per_writer; ++i) {
          const auto op_start = std::chrono::steady_clock::now();
          auto txid = node.StartTransaction();
          Check(txid.status(), "sweep StartTransaction");
          Check(node.Put(*txid, "aft-w" + std::to_string(w), value), "sweep Put");
          Check(node.CommitTransaction(*txid).status(), "sweep Commit");
          local.RecordMillis(WallMs(op_start));
        }
        MutexLock lock(lat_mu);
        lat.Merge(local);
      });
    }
    for (std::thread& t : threads) {
      t.join();
    }
    const double elapsed_ms = WallMs(start);
    const Wal::Stats after = engine.wal_stats();
    const uint64_t ops = static_cast<uint64_t>(writers) * ops_per_writer;
    const uint64_t fsyncs = after.fsyncs - before.fsyncs;
    const double tput = elapsed_ms > 0 ? 1000.0 * ops / elapsed_ms : 0;
    const double fsyncs_per_txn = ops > 0 ? static_cast<double>(fsyncs) / ops : 0;
    const LatencySummary s = lat.Summarize();
    std::printf(
        "  aft commit %2dw        p50 %7.3f ms   p99 %7.3f ms   %8.0f txn/s   %.3f fsyncs/txn\n",
        writers, s.median_ms, s.p99_ms, tput, fsyncs_per_txn);
    bench::EmitJsonRowFsyncs("local_engine", "aft commit " + std::to_string(writers) + "w",
                             s.median_ms, s.p99_ms, tput, ops, fsyncs_per_txn);
    breakdown.Report("aft commit " + std::to_string(writers) + "w");
  }
}

// Crash-recovery speed: reopen the directory every row above wrote into and
// time the full replay (index rebuild included).
void RunReopenReplay(const std::string& dir) {
  const auto start = std::chrono::steady_clock::now();
  auto engine = LocalEngine::Open(dir);
  Check(engine.status(), "reopen");
  const double ms = WallMs(start);
  const LocalEngine::FileStats stats = (*engine)->file_stats();
  std::printf("  reopen replay         %7.3f ms   (%zu files, %.1f MiB)\n", ms, stats.files,
              static_cast<double>(stats.total_bytes) / (1 << 20));
  bench::EmitJsonRow("local_engine", "reopen replay", ms, ms, 0.0, 1);
}

}  // namespace
}  // namespace aft

int main() {
  using namespace aft;

  const long reps = bench::GetEnvLong("AFT_BENCH_REQUESTS", 400);
  const long tput_ops = bench::GetEnvLong("AFT_BENCH_TPUT_OPS", reps < 200 ? reps : 200);
  bench::PrintTitle("LocalEngine: durable WAL engine under real I/O (wall-clock ms)");
  std::printf("  %ld requests per latency row, %ld ops/writer in the sweep\n", reps, tput_ops);

  std::string dir;
  bool remove_dir = false;
  if (const char* env = std::getenv("AFT_BENCH_DATA_DIR"); env != nullptr && env[0] != '\0') {
    dir = env;
  } else {
    char tmpl[] = "/tmp/aft_bench_local_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    if (made == nullptr) {
      std::fprintf(stderr, "bench_local_engine: mkdtemp failed\n");
      return 1;
    }
    dir = made;
    remove_dir = true;
  }
  std::printf("  data dir: %s\n", dir.c_str());

  double allocs_per_txn = 0;
  {
    auto engine = LocalEngine::Open(dir);
    Check(engine.status(), "Open");
    RunRawOps(**engine, reps);
    {
      RealClock& clock = RealClock::Default();
      AftNode node("bench-local", **engine, clock);
      Check(node.Start(), "node Start");
      bench::StageBreakdown breakdown("local_engine", "bench-local");
      // Floor the alloc-measured loop at 64 commits even in smoke mode
      // (AFT_BENCH_REQUESTS=3): the handful of one-time pool/freelist
      // growth allocations right after warmup would otherwise swamp a
      // 3-sample per-txn average. Commits are sub-millisecond, so this
      // costs ~25 ms.
      allocs_per_txn = RunCommit(node, std::max<long>(reps, 64));
      breakdown.Report("local commit");
    }
    RunGroupCommitSweep(**engine, tput_ops);
    RunAftCommitSweep(**engine, tput_ops);
  }
  RunReopenReplay(dir);

  if (remove_dir) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }

  // In-binary ceiling, same value tools/bench_gate.sh enforces on the JSON:
  // a reintroduced per-commit allocation on the durable path fails the bench
  // run itself, not just the gate.
  const double ceiling = bench::GetEnvDouble("AFT_BENCH_MAX_ALLOCS", 8.0);
  if (allocs_per_txn > ceiling) {
    std::fprintf(stderr,
                 "bench_local_engine: FAIL — %.1f allocations/txn on the local commit path "
                 "exceeds the %.1f ceiling\n",
                 allocs_per_txn, ceiling);
    return 1;
  }
  return 0;
}
