// Figure 3 + Table 2: end-to-end latency and consistency anomalies for the
// canonical workload — transactions of 2 sequential functions, each doing
// 2 reads + 1 write of 4KB objects (6 IOs), Zipf 1.0 over 1,000 keys,
// 10 parallel clients x 1,000 transactions — on S3, DynamoDB and Redis,
// with and without AFT, plus DynamoDB's transaction mode.
//
// Paper reference (medians / p99, ms):
//   S3       Plain 199/649   Aft 245/742
//   DynamoDB Txn-mode 81.1/351   Plain 69.1/137   Aft 68.8/141
//   Redis    Plain 33.6/72.5   Aft 39.8/87.8
// Table 2 (anomalies out of 10,000 txns):
//   aft 0/0; S3 595/836; DynamoDB 537/779; DynamoDB-serializable 0/115;
//   Redis 215/383.

#include <memory>

#include "bench/bench_common.h"
#include "src/cluster/deployment.h"
#include "src/storage/sim_dynamo.h"
#include "src/storage/sim_redis.h"
#include "src/storage/sim_s3.h"
#include "src/workload/dataset.h"
#include "src/workload/harness.h"

namespace aft {
namespace {

using bench::BenchClock;
using bench::GetEnvLong;
using bench::PrintTitle;

struct PaperRef {
  double median, p99;
  long ryw, fr;
};

void PrintRow(const char* name, const HarnessResult& r, const PaperRef& paper,
              uint64_t paper_txns, const char* consistency) {
  // Scale the paper's anomaly counts to this run's transaction count.
  const double scale = static_cast<double>(r.completed) / static_cast<double>(paper_txns);
  std::printf(
      "  %-28s p50 %7.2f ms  p99 %8.2f ms  RYW %5llu  FR %5llu   "
      "(paper: %5.1f / %5.1f ms, RYW~%.0f, FR~%.0f) [%s]\n",
      name, r.latency.median_ms, r.latency.p99_ms,
      static_cast<unsigned long long>(r.ryw_anomalies),
      static_cast<unsigned long long>(r.fr_anomalies), paper.median, paper.p99,
      paper.ryw * scale, paper.fr * scale, consistency);
  bench::EmitJsonRow("fig3_end_to_end", name, r.latency.median_ms, r.latency.p99_ms,
                     r.throughput_tps, r.completed);
}

WorkloadSpec CanonicalSpec() {
  WorkloadSpec spec;
  spec.num_keys = 1000;
  spec.zipf_theta = 1.0;
  spec.value_bytes = 4096;
  spec.num_functions = 2;
  spec.reads_per_function = 2;
  spec.writes_per_function = 1;
  return spec;
}

template <typename EngineT>
HarnessResult RunPlain(const HarnessOptions& harness_options) {
  RealClock& clock = BenchClock();
  EngineT engine(clock);
  const WorkloadSpec spec = CanonicalSpec();
  (void)LoadPlainDataset(engine, spec);
  FaasPlatform faas(clock);
  TxnPlanGenerator plans(spec);
  PlainRequestRunner runner(faas, engine, clock, plans);
  return RunClients(clock, runner, harness_options);
}

template <typename EngineT>
HarnessResult RunAft(const HarnessOptions& harness_options) {
  RealClock& clock = BenchClock();
  EngineT engine(clock);
  const WorkloadSpec spec = CanonicalSpec();
  (void)LoadAftDataset(engine, spec);
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 1;
  // Figure 3 runs WITHOUT read caching (caching is studied separately in
  // Figure 4, whose "No Caching" bars match Figure 3's AFT levels).
  cluster_options.node_options.data_cache_bytes = 0;
  ClusterDeployment cluster(engine, clock, cluster_options);
  if (!cluster.Start().ok()) {
    return {};
  }
  FaasPlatform faas(clock);
  AftClient client(cluster.balancer(), clock);
  TxnPlanGenerator plans(spec);
  AftRequestRunner runner(faas, client, clock, plans);
  HarnessResult result = RunClients(clock, runner, harness_options);
  cluster.Stop();
  return result;
}

HarnessResult RunDynamoTxn(const HarnessOptions& harness_options) {
  RealClock& clock = BenchClock();
  SimDynamo engine(clock);
  const WorkloadSpec spec = CanonicalSpec();
  (void)LoadPlainDataset(engine, spec);
  FaasPlatform faas(clock);
  TxnPlanGenerator plans(spec);
  DynamoTxnRequestRunner runner(faas, engine, clock, plans);
  return RunClients(clock, runner, harness_options);
}

}  // namespace
}  // namespace aft

int main() {
  using namespace aft;
  using namespace aft::bench;

  // Latency bench with concurrent clients: pure sleeps, moderate scale.
  BenchClock(/*default_scale=*/0.25, /*default_spin_us=*/0);

  HarnessOptions harness;
  harness.num_clients = 10;
  harness.requests_per_client =
      static_cast<size_t>(GetEnvLong("AFT_BENCH_REQUESTS", 200));

  PrintTitle("Figure 3 + Table 2: end-to-end latency & anomalies (2 functions, 6 IOs, Zipf 1.0)");
  std::printf("  %zu clients x %zu transactions; paper anomaly counts rescaled to this size\n",
              harness.num_clients, harness.requests_per_client);
  constexpr uint64_t kPaperTxns = 10000;

  {
    auto plain = RunPlain<SimS3>(harness);
    PrintRow("S3 Plain", plain, PaperRef{199, 649, 595, 836}, kPaperTxns, "none");
    auto aft_result = RunAft<SimS3>(harness);
    PrintRow("S3 Aft", aft_result, PaperRef{245, 742, 0, 0}, kPaperTxns, "read atomic");
  }
  {
    auto txn = RunDynamoTxn(harness);
    PrintRow("DynamoDB Transactional", txn, PaperRef{81.1, 351, 0, 115}, kPaperTxns,
             "serializable r/o-w/o");
    auto plain = RunPlain<SimDynamo>(harness);
    PrintRow("DynamoDB Plain", plain, PaperRef{69.1, 137, 537, 779}, kPaperTxns, "none");
    auto aft_result = RunAft<SimDynamo>(harness);
    PrintRow("DynamoDB Aft", aft_result, PaperRef{68.8, 141, 0, 0}, kPaperTxns, "read atomic");
  }
  {
    auto plain = RunPlain<SimRedis>(harness);
    PrintRow("Redis Plain", plain, PaperRef{33.6, 72.5, 215, 383}, kPaperTxns,
             "shard-linearizable");
    auto aft_result = RunAft<SimRedis>(harness);
    PrintRow("Redis Aft", aft_result, PaperRef{39.8, 87.8, 0, 0}, kPaperTxns, "read atomic");
  }

  PrintTitle("Shape checks");
  std::printf("  expected: AFT ~= Plain on DynamoDB; AFT +20-25%% on S3/Redis;\n");
  std::printf("  expected: AFT rows report ZERO anomalies; every baseline reports some.\n");
  return 0;
}
