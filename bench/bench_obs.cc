// Microbenchmarks for the observability layer itself: the per-event cost a
// metric or trace span adds to an instrumented hot path, single-threaded and
// under contention. These bound the overhead budget of src/obs/ — the commit
// path increments ~10 counters and observes 2-3 histograms per transaction,
// so instrument cost must stay in nanoseconds for the bench_net throughput
// gate to hold with instrumentation enabled.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

// Count heap allocations on the measuring thread (allocs/op columns).
#define AFT_BENCH_COUNT_ALLOCS
#include "bench/bench_common.h"
#include "src/common/histogram.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace aft {
namespace {

void BM_CounterIncrement(benchmark::State& state) {
  static obs::Counter counter;
  for (auto _ : state) {
    counter.Increment();
  }
  if (state.thread_index() == 0) {
    benchmark::DoNotOptimize(counter.Value());
  }
}
// Threaded variants measure the sharded-lane design: contended increments
// should scale, not serialize on one cache line.
BENCHMARK(BM_CounterIncrement)->Threads(1)->Threads(4)->Threads(8);

void BM_GaugeAdd(benchmark::State& state) {
  static obs::Gauge gauge;
  for (auto _ : state) {
    gauge.Add(1.0);
  }
}
BENCHMARK(BM_GaugeAdd)->Threads(1)->Threads(4);

void BM_HistogramObserve(benchmark::State& state) {
  static obs::Histogram histogram(DefaultLatencyBoundariesMs());
  double v = 0.1;
  for (auto _ : state) {
    histogram.Observe(v);
    v = v < 400.0 ? v * 1.7 : 0.1;  // walk the buckets
  }
}
BENCHMARK(BM_HistogramObserve)->Threads(1)->Threads(4)->Threads(8);

void BM_RegistryLookup(benchmark::State& state) {
  // The anti-pattern (lookup per event instead of caching the pointer):
  // measured so the gap against BM_CounterIncrement stays documented.
  obs::MetricsRegistry registry;
  registry.GetCounter("bench_lookup_total", "x", {{"node", "aft-0"}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        registry.GetCounter("bench_lookup_total", "x", {{"node", "aft-0"}}));
  }
}
BENCHMARK(BM_RegistryLookup);

void BM_TraceSpanUnsampled(benchmark::State& state) {
  // The cost every un-traced transaction pays: must be ~free.
  const obs::TraceContext unsampled{};
  for (auto _ : state) {
    obs::TraceSpan span(unsampled, "Commit", "aft-0");
  }
}
BENCHMARK(BM_TraceSpanUnsampled);

void BM_TraceSpanSampled(benchmark::State& state) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.SetSampleEveryN(1);
  const obs::TraceContext sampled = tracer.StartTrace();
  for (auto _ : state) {
    obs::TraceSpan span(sampled, "Commit", "aft-0");
  }
  tracer.SetSampleEveryN(0);
  tracer.Clear();
}
BENCHMARK(BM_TraceSpanSampled);

void BM_Exposition(benchmark::State& state) {
  // Scrape-time render cost over a registry sized like a running node.
  obs::MetricsRegistry registry;
  const int families = static_cast<int>(state.range(0));
  for (int i = 0; i < families; ++i) {
    const std::string name = "bench_family_" + std::to_string(i) + "_total";
    registry.GetCounter(name, "bench", {{"node", "aft-0"}})->Increment(i);
  }
  registry.GetHistogram("bench_latency_ms", "bench", DefaultLatencyBoundariesMs())
      ->Observe(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.Exposition());
  }
  state.SetLabel(std::to_string(families) + " families");
}
BENCHMARK(BM_Exposition)->Arg(16)->Arg(64)->Arg(256);

// Allocations per instrumentation event, measured directly (outside the
// google-benchmark timing loop so the framework's own bookkeeping does not
// pollute the count) and emitted as JSON rows for BENCH_results.json. A
// counter increment and an unsampled span must be allocation-free; a sampled
// span may allocate (it records into the tracer's ring).
void ReportObsAllocRows() {
  constexpr int kOps = 10000;
  static obs::Counter counter;
  double counter_allocs = 0;
  {
    bench::AllocCountScope allocs;
    for (int i = 0; i < kOps; ++i) {
      counter.Increment();
    }
    counter_allocs = static_cast<double>(allocs.count()) / kOps;
  }
  const obs::TraceContext unsampled{};
  double unsampled_allocs = 0;
  {
    bench::AllocCountScope allocs;
    for (int i = 0; i < kOps; ++i) {
      obs::TraceSpan span(unsampled, "Commit", "aft-0");
    }
    unsampled_allocs = static_cast<double>(allocs.count()) / kOps;
  }
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.SetSampleEveryN(1);
  const obs::TraceContext sampled = tracer.StartTrace();
  double sampled_allocs = 0;
  {
    bench::AllocCountScope allocs;
    for (int i = 0; i < kOps; ++i) {
      obs::TraceSpan span(sampled, "Commit", "aft-0");
    }
    sampled_allocs = static_cast<double>(allocs.count()) / kOps;
  }
  tracer.SetSampleEveryN(0);
  tracer.Clear();
  std::printf("obs allocs/op: counter %.2f, span unsampled %.2f, span sampled %.2f\n",
              counter_allocs, unsampled_allocs, sampled_allocs);
  bench::EmitJsonRowAllocs("obs", "counter increment", 0, 0, 0, kOps, counter_allocs);
  bench::EmitJsonRowAllocs("obs", "span unsampled", 0, 0, 0, kOps, unsampled_allocs);
  bench::EmitJsonRowAllocs("obs", "span sampled", 0, 0, 0, kOps, sampled_allocs);
}

}  // namespace
}  // namespace aft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  aft::ReportObsAllocRows();
  return 0;
}
