// Microbenchmarks for the observability layer itself: the per-event cost a
// metric or trace span adds to an instrumented hot path, single-threaded and
// under contention. These bound the overhead budget of src/obs/ — the commit
// path increments ~10 counters and observes 2-3 histograms per transaction,
// so instrument cost must stay in nanoseconds for the bench_net throughput
// gate to hold with instrumentation enabled.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

// Count heap allocations on the measuring thread (allocs/op columns).
#define AFT_BENCH_COUNT_ALLOCS
#include "bench/bench_common.h"
#include "src/common/clock.h"
#include "src/common/contention.h"
#include "src/common/histogram.h"
#include "src/common/mutex.h"
#include "src/core/aft_node.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/storage/sim_dynamo.h"

namespace aft {
namespace {

void BM_CounterIncrement(benchmark::State& state) {
  static obs::Counter counter;
  for (auto _ : state) {
    counter.Increment();
  }
  if (state.thread_index() == 0) {
    benchmark::DoNotOptimize(counter.Value());
  }
}
// Threaded variants measure the sharded-lane design: contended increments
// should scale, not serialize on one cache line.
BENCHMARK(BM_CounterIncrement)->Threads(1)->Threads(4)->Threads(8);

void BM_GaugeAdd(benchmark::State& state) {
  static obs::Gauge gauge;
  for (auto _ : state) {
    gauge.Add(1.0);
  }
}
BENCHMARK(BM_GaugeAdd)->Threads(1)->Threads(4);

void BM_HistogramObserve(benchmark::State& state) {
  static obs::Histogram histogram(DefaultLatencyBoundariesMs());
  double v = 0.1;
  for (auto _ : state) {
    histogram.Observe(v);
    v = v < 400.0 ? v * 1.7 : 0.1;  // walk the buckets
  }
}
BENCHMARK(BM_HistogramObserve)->Threads(1)->Threads(4)->Threads(8);

void BM_RegistryLookup(benchmark::State& state) {
  // The anti-pattern (lookup per event instead of caching the pointer):
  // measured so the gap against BM_CounterIncrement stays documented.
  obs::MetricsRegistry registry;
  registry.GetCounter("bench_lookup_total", "x", {{"node", "aft-0"}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        registry.GetCounter("bench_lookup_total", "x", {{"node", "aft-0"}}));
  }
}
BENCHMARK(BM_RegistryLookup);

void BM_TraceSpanUnsampled(benchmark::State& state) {
  // The cost every un-traced transaction pays: must be ~free.
  const obs::TraceContext unsampled{};
  for (auto _ : state) {
    obs::TraceSpan span(unsampled, "Commit", "aft-0");
  }
}
BENCHMARK(BM_TraceSpanUnsampled);

void BM_TraceSpanSampled(benchmark::State& state) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.SetSampleEveryN(1);
  const obs::TraceContext sampled = tracer.StartTrace();
  for (auto _ : state) {
    obs::TraceSpan span(sampled, "Commit", "aft-0");
  }
  tracer.SetSampleEveryN(0);
  tracer.Clear();
}
BENCHMARK(BM_TraceSpanSampled);

void BM_Exposition(benchmark::State& state) {
  // Scrape-time render cost over a registry sized like a running node.
  obs::MetricsRegistry registry;
  const int families = static_cast<int>(state.range(0));
  for (int i = 0; i < families; ++i) {
    const std::string name = "bench_family_" + std::to_string(i) + "_total";
    registry.GetCounter(name, "bench", {{"node", "aft-0"}})->Increment(i);
  }
  registry.GetHistogram("bench_latency_ms", "bench", DefaultLatencyBoundariesMs())
      ->Observe(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.Exposition());
  }
  state.SetLabel(std::to_string(families) + " families");
}
BENCHMARK(BM_Exposition)->Arg(16)->Arg(64)->Arg(256);

// ---- contention profiler overhead -------------------------------------------
// The three tiers a lock acquisition can sit in, so the cost of naming a
// mutex (and of turning the sampler on) stays measured: an unnamed Mutex is
// a plain std::mutex; a named one with sampling off pays one relaxed
// thread-local check per acquisition; a named one with SampleEveryN(1) times
// every acquisition through the try-lock-first path.
void BM_MutexLockUnnamed(benchmark::State& state) {
  static Mutex mu;
  for (auto _ : state) {
    MutexLock lock(mu);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_MutexLockUnnamed)->Threads(1)->Threads(4);

void BM_MutexLockNamedUnsampled(benchmark::State& state) {
  static Mutex mu("bench.unsampled");
  if (state.thread_index() == 0) {
    contention::SetSampleEveryN(0);
  }
  for (auto _ : state) {
    MutexLock lock(mu);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_MutexLockNamedUnsampled)->Threads(1)->Threads(4);

void BM_MutexLockNamedSampled(benchmark::State& state) {
  static Mutex mu("bench.sampled");
  if (state.thread_index() == 0) {
    contention::SetSampleEveryN(1);
  }
  for (auto _ : state) {
    MutexLock lock(mu);
    benchmark::ClobberMemory();
  }
  if (state.thread_index() == 0) {
    contention::SetSampleEveryN(0);
  }
}
BENCHMARK(BM_MutexLockNamedSampled)->Threads(1)->Threads(4);

// Allocations per instrumentation event, measured directly (outside the
// google-benchmark timing loop so the framework's own bookkeeping does not
// pollute the count) and emitted as JSON rows for BENCH_results.json. A
// counter increment and an unsampled span must be allocation-free; a sampled
// span may allocate (it records into the tracer's ring).
void ReportObsAllocRows() {
  constexpr int kOps = 10000;
  static obs::Counter counter;
  double counter_allocs = 0;
  {
    bench::AllocCountScope allocs;
    for (int i = 0; i < kOps; ++i) {
      counter.Increment();
    }
    counter_allocs = static_cast<double>(allocs.count()) / kOps;
  }
  const obs::TraceContext unsampled{};
  double unsampled_allocs = 0;
  {
    bench::AllocCountScope allocs;
    for (int i = 0; i < kOps; ++i) {
      obs::TraceSpan span(unsampled, "Commit", "aft-0");
    }
    unsampled_allocs = static_cast<double>(allocs.count()) / kOps;
  }
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.SetSampleEveryN(1);
  const obs::TraceContext sampled = tracer.StartTrace();
  double sampled_allocs = 0;
  {
    bench::AllocCountScope allocs;
    for (int i = 0; i < kOps; ++i) {
      obs::TraceSpan span(sampled, "Commit", "aft-0");
    }
    sampled_allocs = static_cast<double>(allocs.count()) / kOps;
  }
  tracer.SetSampleEveryN(0);
  tracer.Clear();
  std::printf("obs allocs/op: counter %.2f, span unsampled %.2f, span sampled %.2f\n",
              counter_allocs, unsampled_allocs, sampled_allocs);
  bench::EmitJsonRowAllocs("obs", "counter increment", 0, 0, 0, kOps, counter_allocs);
  bench::EmitJsonRowAllocs("obs", "span unsampled", 0, 0, 0, kOps, unsampled_allocs);
  bench::EmitJsonRowAllocs("obs", "span sampled", 0, 0, 0, kOps, sampled_allocs);
}

// ---- attribution A/B --------------------------------------------------------
// The end-to-end cost of the per-stage commit decomposition itself: the same
// CPU-bound commit loop (instant simulated engine, so instrument cost is not
// hidden behind sleeps) with stage timing off, then on. tools/bench_gate.sh
// holds the on/off throughput ratio at >= 0.95 — "attribution is always on"
// only stays true while it costs < 5%.

// Zero-latency engine profile: measures the commit pipeline's CPU cost, not
// simulated round trips.
SimDynamoOptions InstantDynamoOptions() {
  SimDynamoOptions options;
  options.profile = EngineLatencyProfile{LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero(),
                                         LatencyModel::Zero(), LatencyModel::Zero()};
  options.staleness = StalenessModel{};
  options.txn_call = LatencyModel::Zero();
  return options;
}

struct AbResult {
  double p50_ms = 0;
  double p99_ms = 0;
  double txn_per_s = 0;
  uint64_t committed = 0;
};

double SortedPercentile(std::vector<double>& values, double q) {
  if (values.empty()) {
    return 0;
  }
  const size_t idx = static_cast<size_t>(q * (values.size() - 1));
  return values[idx];
}

AbResult MeasureAttributionRun(const char* node_id, bool stage_timing) {
  // 4-op transactions (the paper's workloads write several keys per txn);
  // thread count stays at or below the core count so the A/B measures the
  // commit pipeline, not scheduler churn on an oversubscribed runner.
  const unsigned hw = std::thread::hardware_concurrency();
  const int kThreads = static_cast<int>(std::min(4u, hw > 0 ? hw : 1u));
  constexpr int kPutsPerTxn = 4;
  const long per_thread = bench::GetEnvLong("AFT_BENCH_OBS_TXNS", 2000);
  contention::SetStageTiming(stage_timing);
  RealClock clock(0.001);
  SimDynamo engine(clock, InstantDynamoOptions());
  AftNodeOptions options;
  options.service_cores = 0;
  options.enable_commit_batching = true;
  AftNode node(node_id, engine, clock, options);
  AbResult result;
  if (!node.Start().ok()) {
    return result;
  }
  std::atomic<uint64_t> committed{0};
  std::vector<std::vector<double>> latencies_ms(kThreads);
  const auto wall_start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        auto& lat = latencies_ms[t];
        lat.reserve(per_thread);
        for (long i = 0; i < per_thread; ++i) {
          auto txid = node.StartTransaction();
          if (!txid.ok()) {
            continue;
          }
          bool put_ok = true;
          for (int k = 0; k < kPutsPerTxn && put_ok; ++k) {
            put_ok = node.Put(*txid, "k" + std::to_string((i * kPutsPerTxn + k) % 16), "v").ok();
          }
          if (!put_ok) {
            continue;
          }
          const auto commit_start = std::chrono::steady_clock::now();
          if (node.CommitTransaction(*txid).ok()) {
            committed.fetch_add(1, std::memory_order_relaxed);
            lat.push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - commit_start)
                              .count());
          }
        }
      });
    }
    for (auto& worker : workers) {
      worker.join();
    }
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  node.Kill();
  std::vector<double> merged;
  for (auto& lat : latencies_ms) {
    merged.insert(merged.end(), lat.begin(), lat.end());
  }
  std::sort(merged.begin(), merged.end());
  result.committed = committed.load();
  result.p50_ms = SortedPercentile(merged, 0.50);
  result.p99_ms = SortedPercentile(merged, 0.99);
  result.txn_per_s = wall_s > 0 ? result.committed / wall_s : 0;
  return result;
}

void ReportAttributionAbRows() {
  // One discarded warm-up run (page-faults, lazy metric registration, heap
  // growth), then best-of-3 per config, interleaved so a noisy-neighbor
  // burst on the CI runner cannot land entirely on one side of the A/B.
  MeasureAttributionRun("bench-obs-attrib-warmup", true);
  constexpr int kReps = 3;
  AbResult off, on;
  // Each field takes its best (noise-floor) value across reps independently:
  // max throughput, min percentile — the cleanest window either side saw.
  auto fold = [](AbResult& best, const AbResult& rep) {
    if (best.committed == 0) {
      best = rep;
      return;
    }
    best.txn_per_s = std::max(best.txn_per_s, rep.txn_per_s);
    best.p50_ms = std::min(best.p50_ms, rep.p50_ms);
    best.p99_ms = std::min(best.p99_ms, rep.p99_ms);
  };
  for (int rep = 0; rep < kReps; ++rep) {
    fold(off, MeasureAttributionRun("bench-obs-attrib-off", false));
    fold(on, MeasureAttributionRun("bench-obs-attrib-on", true));
  }
  contention::SetStageTiming(true);  // ship default: attribution on
  const double ratio = off.txn_per_s > 0 ? on.txn_per_s / off.txn_per_s : 0;
  const double p50_ratio = off.p50_ms > 0 ? on.p50_ms / off.p50_ms : 0;
  std::printf(
      "attribution A/B: off %.0f txn/s (p50 %.4f ms), on %.0f txn/s (p50 %.4f ms), "
      "tput on/off x%.3f, p50 on/off x%.3f\n",
      off.txn_per_s, off.p50_ms, on.txn_per_s, on.p50_ms, ratio, p50_ratio);
  bench::EmitJsonRow("obs", "commit attribution off", off.p50_ms, off.p99_ms, off.txn_per_s,
                     off.committed);
  bench::EmitJsonRow("obs", "commit attribution on", on.p50_ms, on.p99_ms, on.txn_per_s,
                     on.committed);
}

}  // namespace
}  // namespace aft

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  aft::ReportObsAllocRows();
  aft::ReportAttributionAbRows();
  return 0;
}
