// Parallel-I/O microbench: commit-flush latency as the write set grows, and
// the multi-key read path, over SimS3 — the engine with no batch API, where
// per-op latency stacks worst. tools/bench.sh runs this before and after
// changes to the storage I/O layer; the `S3 commit Nw` rows are the ones the
// parallel-flush acceptance criterion compares.
//
// The node runs with service throttling off and the data cache disabled so
// the measured time is (almost) purely storage round-trips.

#include <cstdlib>
#include <string>

#include "bench/bench_common.h"
#include "src/common/stats.h"
#include "src/core/aft_node.h"
#include "src/storage/sim_s3.h"

namespace aft {
namespace {

using bench::BenchClock;
using bench::EmitJsonRow;
using bench::GetEnvLong;
using bench::PrintTitle;

constexpr size_t kReadKeys = 5;

std::string Key(size_t i) { return "pio" + std::to_string(i); }

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "bench_parallel_io: %s: %s\n", what, s.ToString().c_str());
    std::abort();
  }
}

void RunCommitSweep(Clock& clock, long reps) {
  std::printf("\n-- commit latency vs write-set size (4KB values) --\n");
  SimS3 engine(clock);
  AftNodeOptions options;
  options.service_cores = 0;
  AftNode node("bench-commit", engine, clock, options);
  Check(node.Start(), "Start");
  const std::string value(4096, 'x');
  for (size_t writes : {1, 2, 5, 10, 20}) {
    LatencyRecorder lat;
    for (long r = 0; r < reps; ++r) {
      Result<Uuid> txid = node.StartTransaction();
      Check(txid.status(), "StartTransaction");
      for (size_t k = 0; k < writes; ++k) {
        Check(node.Put(txid.value(), Key(k), value), "Put");
      }
      const TimePoint start = clock.Now();
      Result<TxnId> commit = node.CommitTransaction(txid.value());
      lat.Record(clock.Now() - start);
      Check(commit.status(), "CommitTransaction");
    }
    const LatencySummary s = lat.Summarize();
    std::printf("  %2zu writes   commit p50 %7.2f ms   p99 %8.2f ms\n", writes,
                s.median_ms, s.p99_ms);
    EmitJsonRow("parallel_io", "S3 commit " + std::to_string(writes) + "w",
                s.median_ms, s.p99_ms, 0.0, static_cast<uint64_t>(reps));
  }
}

void RunReadSweep(Clock& clock, long reps) {
  std::printf("\n-- read latency: %zu keys per txn, cold cache --\n", kReadKeys);
  SimS3 engine(clock);
  AftNodeOptions options;
  options.service_cores = 0;
  options.data_cache_bytes = 0;
  AftNode node("bench-read", engine, clock, options);
  Check(node.Start(), "Start");
  {
    Result<Uuid> txid = node.StartTransaction();
    Check(txid.status(), "StartTransaction");
    for (size_t k = 0; k < kReadKeys; ++k) {
      Check(node.Put(txid.value(), Key(k), std::string(4096, 's')), "Put");
    }
    Check(node.CommitTransaction(txid.value()).status(), "seed commit");
  }
  LatencyRecorder lat;
  for (long r = 0; r < reps; ++r) {
    Result<Uuid> txid = node.StartTransaction();
    Check(txid.status(), "StartTransaction");
    const TimePoint start = clock.Now();
    for (size_t k = 0; k < kReadKeys; ++k) {
      Result<AftNode::VersionedRead> read = node.GetVersioned(txid.value(), Key(k));
      Check(read.status(), "GetVersioned");
    }
    lat.Record(clock.Now() - start);
    Check(node.AbortTransaction(txid.value()), "AbortTransaction");
  }
  const LatencySummary s = lat.Summarize();
  std::printf("  seq get x%zu  p50 %7.2f ms   p99 %8.2f ms\n", kReadKeys,
              s.median_ms, s.p99_ms);
  EmitJsonRow("parallel_io", "S3 seq-get " + std::to_string(kReadKeys) + "k",
              s.median_ms, s.p99_ms, 0.0, static_cast<uint64_t>(reps));

  // Same keys through the batched read API: one MultiGet per transaction,
  // payload fetches fanned out on the IoExecutor.
  std::vector<std::string> keys;
  for (size_t k = 0; k < kReadKeys; ++k) {
    keys.push_back(Key(k));
  }
  LatencyRecorder multi;
  for (long r = 0; r < reps; ++r) {
    Result<Uuid> txid = node.StartTransaction();
    Check(txid.status(), "StartTransaction");
    const TimePoint start = clock.Now();
    Result<std::vector<AftNode::VersionedRead>> reads = node.MultiGet(txid.value(), keys);
    multi.Record(clock.Now() - start);
    Check(reads.status(), "MultiGet");
    Check(node.AbortTransaction(txid.value()), "AbortTransaction");
  }
  const LatencySummary m = multi.Summarize();
  std::printf("  multiget x%zu p50 %7.2f ms   p99 %8.2f ms\n", kReadKeys,
              m.median_ms, m.p99_ms);
  EmitJsonRow("parallel_io", "S3 multiget " + std::to_string(kReadKeys) + "k",
              m.median_ms, m.p99_ms, 0.0, static_cast<uint64_t>(reps));
}

}  // namespace
}  // namespace aft

int main() {
  using namespace aft;
  using namespace aft::bench;

  // Latency bench: pure sleeps, moderate scale (same as fig3/fig6).
  RealClock& clock = BenchClock(/*default_scale=*/0.25, /*default_spin_us=*/0);
  const long reps = GetEnvLong("AFT_BENCH_REQUESTS", 30);

  PrintTitle("Parallel storage I/O: SimS3 commit flush + multi-key reads");
  RunCommitSweep(clock, reps);
  RunReadSweep(clock, reps);
  return 0;
}
