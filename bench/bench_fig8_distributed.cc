// Figure 8: distributed scalability. Aggregate throughput as AFT nodes are
// added, with a fixed number of closed-loop clients per node, over DynamoDB
// and Redis, compared against the IDEAL slope (nodes x single-node
// throughput).
//
// Paper shape: both deployments scale within 90% of ideal (8,000+ txn/s at
// 640 clients over DynamoDB; more over Redis); the largest configuration
// plateaus on the FaaS platform's concurrent-invocation limit, not on AFT.
// This run uses fewer clients per node than the paper (the simulation host
// has a single core) — the slope-vs-ideal comparison is the result.

#include "bench/aft_env.h"
#include "src/storage/sim_dynamo.h"
#include "src/storage/sim_redis.h"

namespace aft {
namespace {

using bench::AftEnv;
using bench::BenchClock;
using bench::GetEnvLong;
using bench::PrintTitle;

template <typename EngineT>
void RunSweep(const char* label, size_t clients_per_node, long requests,
              size_t faas_concurrency_limit) {
  std::printf("\n-- AFT over %s (%zu clients per node) --\n", label, clients_per_node);
  double single_node_tput = 0;
  for (size_t nodes : {1, 2, 4, 6}) {
    WorkloadSpec spec;
    spec.num_keys = 1000;
    spec.zipf_theta = 1.5;
    ClusterOptions cluster_options;
    cluster_options.num_nodes = nodes;
    cluster_options.multicast_interval = Millis(1000);
    cluster_options.start_background_threads = true;
    FaasOptions faas_options;
    faas_options.concurrency_limit = faas_concurrency_limit;
    AftEnv<EngineT> env(BenchClock(), spec, cluster_options, faas_options);

    HarnessOptions harness;
    harness.num_clients = nodes * clients_per_node;
    harness.requests_per_client = static_cast<size_t>(requests);
    harness.check_anomalies = false;
    const HarnessResult result = env.Run(harness);
    if (nodes == 1) {
      single_node_tput = result.throughput_tps;
    }
    const double ideal = single_node_tput * static_cast<double>(nodes);
    std::printf("  %zu node%s (%3zu clients)   %8.1f txn/s   ideal %8.1f   (%5.1f%% of ideal)\n",
                nodes, nodes == 1 ? " " : "s", harness.num_clients, result.throughput_tps,
                ideal, ideal > 0 ? 100.0 * result.throughput_tps / ideal : 100.0);
  }
}

}  // namespace
}  // namespace aft

int main() {
  using namespace aft;
  using namespace aft::bench;

  BenchClock(/*default_scale=*/1.0, /*default_spin_us=*/0);
  const size_t clients_per_node =
      static_cast<size_t>(GetEnvLong("AFT_BENCH_CLIENTS_PER_NODE", 16));
  const long requests = GetEnvLong("AFT_BENCH_REQUESTS", 40);
  // The largest configuration exceeds this limit, reproducing the paper's
  // Lambda-concurrency plateau at the top end.
  const size_t faas_limit = static_cast<size_t>(GetEnvLong("AFT_BENCH_FAAS_LIMIT", 150));

  PrintTitle("Figure 8: distributed scalability vs ideal slope (Zipf 1.5)");
  std::printf("  FaaS concurrent-invocation limit: %zu\n", faas_limit);
  RunSweep<SimDynamo>("DynamoDB", clients_per_node, requests, faas_limit);
  RunSweep<SimRedis>("Redis", clients_per_node, requests, faas_limit);

  PrintTitle("Shape checks");
  std::printf("  expected: throughput within ~90%% of ideal as nodes are added;\n");
  std::printf("  expected: the largest configuration is capped by the FaaS concurrency "
              "limit, not AFT.\n");
  return 0;
}
