// Figure 9: garbage collection overhead. Throughput over time for one AFT
// node with 40 clients (Zipf 1.5), with global data GC enabled vs disabled,
// plus the rate of transactions deleted by the GC.
//
// Paper shape: the two throughput curves are indistinguishable (GC runs off
// the critical path on dedicated delete cores), and with GC on, deletions
// proceed at roughly the rate transactions are committed under a moderately
// contended workload.

#include "bench/aft_env.h"
#include "src/storage/sim_dynamo.h"

namespace aft {
namespace {

using bench::AftEnv;
using bench::BenchClock;
using bench::GetEnvLong;
using bench::PrintTitle;

struct GcRun {
  std::vector<ThroughputTimeline::Row> throughput;
  std::vector<double> deletes_per_sec;
  HarnessResult result;
  uint64_t total_deleted = 0;
  size_t commit_set_size = 0;
};

GcRun RunConfig(bool gc_enabled, double duration_sec, size_t clients) {
  RealClock& clock = BenchClock();
  WorkloadSpec spec;
  spec.num_keys = 1000;
  spec.zipf_theta = 1.5;
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 1;
  cluster_options.multicast_interval = Millis(1000);
  cluster_options.start_background_threads = true;
  cluster_options.node_options.enable_background_threads = true;
  cluster_options.node_options.local_gc_interval = Millis(1000);
  cluster_options.fault_manager.enable_global_gc = gc_enabled;
  cluster_options.fault_manager.gc_interval = Millis(1000);
  AftEnv<SimDynamo> env(clock, spec, cluster_options);

  // Sample the GC deletion counter once per simulated second.
  std::atomic<bool> stop_sampler{false};
  std::vector<double> deletes_per_sec;
  std::thread sampler([&] {
    uint64_t last = 0;
    while (!stop_sampler.load()) {
      clock.SleepFor(Millis(1000));
      const uint64_t now = env.cluster->fault_manager().stats().txns_deleted.load();
      deletes_per_sec.push_back(static_cast<double>(now - last));
      last = now;
    }
  });

  ThroughputTimeline timeline(clock, Millis(1000));
  HarnessOptions harness;
  harness.num_clients = clients;
  harness.requests_per_client = 1000000;  // Bounded by max_duration below.
  harness.max_duration = std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(duration_sec));
  harness.check_anomalies = false;
  GcRun run;
  run.result = env.Run(harness, &timeline);
  stop_sampler.store(true);
  sampler.join();
  run.throughput = timeline.Report();
  run.deletes_per_sec = std::move(deletes_per_sec);
  run.total_deleted = env.cluster->fault_manager().stats().txns_deleted.load();
  run.commit_set_size = env.cluster->node(0)->CommitSetSize();
  return run;
}

}  // namespace
}  // namespace aft

int main() {
  using namespace aft;
  using namespace aft::bench;

  BenchClock(/*default_scale=*/0.5, /*default_spin_us=*/0);
  const double duration_sec =
      static_cast<double>(GetEnvLong("AFT_BENCH_DURATION_SEC", 25));
  const size_t clients = static_cast<size_t>(GetEnvLong("AFT_BENCH_CLIENTS", 40));

  PrintTitle("Figure 9: throughput with and without global garbage collection");
  std::printf("  1 node, %zu clients, Zipf 1.5, %.0f simulated seconds per configuration\n",
              clients, duration_sec);

  GcRun with_gc = RunConfig(true, duration_sec, clients);
  GcRun without_gc = RunConfig(false, duration_sec, clients);

  std::printf("\n  %-6s %-18s %-18s %-18s\n", "t(s)", "GC tput (txn/s)", "NoGC tput (txn/s)",
              "deleted (txn/s)");
  const size_t rows = std::min(with_gc.throughput.size(), without_gc.throughput.size());
  for (size_t i = 0; i + 1 < rows; ++i) {  // Drop the ragged final bucket.
    const double deletes =
        i < with_gc.deletes_per_sec.size() ? with_gc.deletes_per_sec[i] : 0;
    std::printf("  %-6.0f %-18.1f %-18.1f %-18.1f\n", with_gc.throughput[i].window_start_sec,
                with_gc.throughput[i].events_per_sec, without_gc.throughput[i].events_per_sec,
                deletes);
  }

  std::printf("\n  aggregate: GC on %.1f txn/s, GC off %.1f txn/s (paper: no discernible "
              "difference)\n",
              with_gc.result.throughput_tps, without_gc.result.throughput_tps);
  std::printf("  transactions deleted: %llu (%.1f/s); commit-set size at end: GC on %zu, "
              "GC off %zu\n",
              static_cast<unsigned long long>(with_gc.total_deleted),
              static_cast<double>(with_gc.total_deleted) / duration_sec,
              with_gc.commit_set_size, without_gc.commit_set_size);

  PrintTitle("Shape checks");
  std::printf("  expected: GC-on and GC-off throughput curves overlap;\n");
  std::printf("  expected: deletion rate tracks the commit rate under contention.\n");
  return 0;
}
