// Comparison: AFT vs the original RAMP-Fast protocol (§2.2, §3.6, §7).
//
// RAMP is the only prior work providing read atomic isolation, but it
// assumes (1) pre-declared read/write sets and (2) linearizable,
// unreplicated, shard-resident protocol logic. AFT drops both assumptions
// to fit commodity serverless storage, paying with potentially STALER reads
// and rare forced aborts (§3.6). This bench quantifies that trade-off on a
// one-shot transactional workload both systems can run:
//
//   * latency          — RAMP's parallel rounds vs AFT's shim path;
//   * staleness        — age (in versions) of the data each system returns
//                        for a read-only transaction under concurrent writes;
//   * repair/abort     — RAMP round-2 repair rate vs AFT read-abort rate.

#include <map>

#include "bench/bench_common.h"
#include "src/cluster/aft_client.h"
#include "src/cluster/load_balancer.h"
#include "src/common/stats.h"
#include "src/core/aft_node.h"
#include "src/ramp/ramp_client.h"
#include "src/storage/sim_dynamo.h"
#include "src/workload/workload.h"

namespace aft {
namespace {

using bench::BenchClock;
using bench::GetEnvLong;
using bench::PrintTitle;

constexpr size_t kKeys = 256;
constexpr size_t kTxnKeys = 4;  // Keys touched per transaction.

// Tracks, per key, the number of committed versions so far, so readers can
// measure how many versions behind their reads are.
struct VersionClock {
  std::mutex mu;
  std::map<std::string, std::map<std::string, uint64_t>> committed;  // key -> payload -> seq
  std::map<std::string, uint64_t> latest_seq;

  void NoteCommit(const std::string& key, const std::string& payload) {
    std::lock_guard<std::mutex> lock(mu);
    committed[key][payload] = ++latest_seq[key];
  }
  // Versions-behind of `payload` for `key` (0 == freshest at lookup time).
  double Staleness(const std::string& key, const std::string& payload) {
    std::lock_guard<std::mutex> lock(mu);
    auto key_it = committed.find(key);
    if (key_it == committed.end()) {
      return 0;
    }
    if (payload == "(null)") {
      return static_cast<double>(latest_seq[key]);  // NULL read: maximally stale.
    }
    auto payload_it = key_it->second.find(payload);
    if (payload_it == key_it->second.end()) {
      // Not registered yet: a write so fresh the writer has not finished its
      // accounting — the opposite of stale.
      return 0;
    }
    return static_cast<double>(latest_seq[key] - payload_it->second);
  }
};

std::vector<std::string> PickKeys(Rng& rng, const ZipfSampler& zipf) {
  std::vector<std::string> keys;
  while (keys.size() < kTxnKeys) {
    std::string key = KeyForRank(zipf.Sample(rng));
    if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
      keys.push_back(std::move(key));
    }
  }
  return keys;
}

}  // namespace
}  // namespace aft

int main() {
  using namespace aft;
  using namespace aft::bench;

  BenchClock(/*default_scale=*/0.1, /*default_spin_us=*/0);
  RealClock& clock = BenchClock();
  const long txns = GetEnvLong("AFT_BENCH_REQUESTS", 1500);
  const size_t kClients = 8;

  PrintTitle("AFT vs RAMP-Fast/Small/Hybrid: the dynamic-read-set trade-off (4-key one-shot txns, Zipf 1.2)");
  std::printf("  %zu clients x %ld transactions (50%% read-only / 50%% write-only)\n", kClients,
              static_cast<unsigned long>(txns) / kClients);

  // ---- RAMP (all three variants) -----------------------------------------------
  struct RampRow {
    LatencySummary reads;
    double staleness = 0;
    double repair_rate = 0;
  };
  auto run_ramp = [&](auto* client_tag, long txn_count) -> RampRow {
    using ClientT = std::remove_pointer_t<decltype(client_tag)>;
    RampStore store(clock);
    ClientT seed_client(store);
    VersionClock versions;
    for (size_t i = 0; i < kKeys; ++i) {
      (void)seed_client.WriteTransaction({{KeyForRank(i), "seed"}});
      versions.NoteCommit(KeyForRank(i), "seed");
    }
    LatencyRecorder read_latency;
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> staleness_sum_milli{0};
    ClientT client(store);  // Thread-safe: shared by all workers.
    auto worker = [&](uint64_t seed) {
      Rng rng(seed);
      ZipfSampler zipf(kKeys, 1.2);
      for (long i = 0; i < txn_count / static_cast<long>(kClients); ++i) {
        const auto keys = PickKeys(rng, zipf);
        if (rng.Bernoulli(0.5)) {
          std::map<std::string, std::string> writes;
          const std::string payload = "w" + std::to_string(rng());
          for (const auto& key : keys) {
            writes[key] = payload;
          }
          if (client.WriteTransaction(writes).ok()) {
            for (const auto& key : keys) {
              versions.NoteCommit(key, payload);
            }
          }
        } else {
          const TimePoint begin = clock.Now();
          auto result = client.ReadTransaction(keys);
          read_latency.Record(clock.Now() - begin);
          if (result.ok()) {
            for (size_t k = 0; k < keys.size(); ++k) {
              staleness_sum_milli.fetch_add(static_cast<uint64_t>(
                  1000 * versions.Staleness(keys[k], (*result)[k].value)));
              reads.fetch_add(1);
            }
          }
        }
      }
    };
    std::vector<std::thread> workers;
    for (size_t c = 0; c < kClients; ++c) {
      workers.emplace_back(worker, 1000 + c);
    }
    for (auto& w : workers) {
      w.join();
    }
    RampRow row;
    row.reads = read_latency.Summarize();
    row.repair_rate = client.stats().read_txns.load() > 0
                          ? static_cast<double>(client.stats().second_round_fetches.load()) /
                                static_cast<double>(client.stats().read_txns.load())
                          : 0;
    row.staleness =
        reads.load() > 0 ? static_cast<double>(staleness_sum_milli.load()) / 1000.0 /
                               static_cast<double>(reads.load())
                         : 0;
    return row;
  };
  const RampRow fast = run_ramp(static_cast<RampFastClient*>(nullptr), txns);
  const RampRow small = run_ramp(static_cast<RampSmallClient*>(nullptr), txns);
  const RampRow hybrid = run_ramp(static_cast<RampHybridClient*>(nullptr), txns);

  // ---- AFT -------------------------------------------------------------------
  LatencySummary aft_reads;
  double aft_staleness = 0;
  uint64_t aft_read_aborts = 0;
  {
    SimDynamo storage(clock);
    AftNode node("cmp", storage, clock);
    if (!node.Start().ok()) {
      return 1;
    }
    LoadBalancer balancer;
    balancer.AddNode(&node);
    AftClient client(balancer, clock);
    VersionClock versions;
    {
      auto seed_txn = client.StartTransaction();
      for (size_t i = 0; i < kKeys; ++i) {
        (void)client.Put(*seed_txn, KeyForRank(i), "seed");
        versions.NoteCommit(KeyForRank(i), "seed");
      }
      (void)client.Commit(*seed_txn);
    }
    LatencyRecorder read_latency;
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> staleness_sum_milli{0};
    auto worker = [&](uint64_t seed) {
      Rng rng(seed);
      ZipfSampler zipf(kKeys, 1.2);
      for (long i = 0; i < txns / static_cast<long>(kClients); ++i) {
        const auto keys = PickKeys(rng, zipf);
        auto session = client.StartTransaction();
        if (!session.ok()) {
          continue;
        }
        if (rng.Bernoulli(0.5)) {
          const std::string payload = "w" + std::to_string(rng());
          for (const auto& key : keys) {
            (void)client.Put(*session, key, payload);
          }
          if (client.Commit(*session).ok()) {
            for (const auto& key : keys) {
              versions.NoteCommit(key, payload);
            }
          }
        } else {
          const TimePoint begin = clock.Now();
          bool aborted = false;
          std::vector<std::optional<std::string>> values;
          for (const auto& key : keys) {
            auto value = client.Get(*session, key);
            if (!value.ok()) {
              aborted = true;
              break;
            }
            values.push_back(*value);
          }
          read_latency.Record(clock.Now() - begin);
          if (aborted) {
            (void)client.Abort(*session);
            continue;
          }
          (void)client.Commit(*session);
          for (size_t k = 0; k < values.size(); ++k) {
            staleness_sum_milli.fetch_add(static_cast<uint64_t>(
                1000 * versions.Staleness(keys[k], values[k].value_or("(null)"))));
            reads.fetch_add(1);
          }
        }
      }
    };
    std::vector<std::thread> workers;
    for (size_t c = 0; c < kClients; ++c) {
      workers.emplace_back(worker, 1000 + c);
    }
    for (auto& w : workers) {
      w.join();
    }
    aft_reads = read_latency.Summarize();
    aft_staleness =
        reads.load() > 0 ? static_cast<double>(staleness_sum_milli.load()) / 1000.0 /
                               static_cast<double>(reads.load())
                         : 0;
    aft_read_aborts = node.stats().read_aborts.load();
  }

  std::printf("\n  %-12s %-22s %-20s %-24s\n", "system", "read txn p50/p99 (ms)",
              "avg staleness (vers)", "repairs / aborts");
  auto print_ramp = [](const char* name, const RampRow& row) {
    std::printf("  %-12s %6.2f / %-13.2f %-20.3f %.3f round-2 fetches per read txn\n", name,
                row.reads.median_ms, row.reads.p99_ms, row.staleness, row.repair_rate);
  };
  print_ramp("RAMP-Fast", fast);
  print_ramp("RAMP-Small", small);
  print_ramp("RAMP-Hybrid", hybrid);
  std::printf("  %-12s %6.2f / %-13.2f %-20.3f %llu read aborts\n", "AFT",
              aft_reads.median_ms, aft_reads.p99_ms, aft_staleness,
              static_cast<unsigned long long>(aft_read_aborts));

  PrintTitle("Shape checks");
  std::printf("  expected: every system is read-atomic; AFT reads are somewhat staler\n");
  std::printf("  (it may fall back to older compatible versions) and can abort; RAMP\n");
  std::printf("  repairs forward but requires declared read sets + shard-side logic;\n");
  std::printf("  RAMP-Small always pays 2 rounds, RAMP-Hybrid only on (possibly\n");
  std::printf("  spurious) Bloom hits, RAMP-Fast only on true sibling mismatches.\n");
  return 0;
}
