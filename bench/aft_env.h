// Shared AFT deployment fixture for the figure benchmarks: one storage
// engine + dataset + cluster + FaaS platform + client + request runner.

#ifndef BENCH_AFT_ENV_H_
#define BENCH_AFT_ENV_H_

#include <memory>

#include "bench/bench_common.h"
#include "src/cluster/deployment.h"
#include "src/workload/dataset.h"
#include "src/workload/harness.h"

namespace aft {
namespace bench {

template <typename EngineT>
struct AftEnv {
  AftEnv(Clock& clock_in, const WorkloadSpec& spec_in, ClusterOptions cluster_options = {},
         FaasOptions faas_options = {})
      : clock(clock_in), spec(spec_in), engine(clock_in), faas(clock_in, faas_options) {
    (void)LoadAftDataset(engine, spec);
    cluster = std::make_unique<ClusterDeployment>(engine, clock, cluster_options);
    (void)cluster->Start();
    client = std::make_unique<AftClient>(cluster->balancer(), clock);
    plans = std::make_unique<TxnPlanGenerator>(spec);
    runner = std::make_unique<AftRequestRunner>(faas, *client, clock, *plans);
  }

  ~AftEnv() {
    if (cluster != nullptr) {
      cluster->Stop();
    }
  }

  HarnessResult Run(const HarnessOptions& options, ThroughputTimeline* timeline = nullptr) {
    return RunClients(clock, *runner, options, timeline);
  }

  Clock& clock;
  WorkloadSpec spec;
  EngineT engine;
  FaasPlatform faas;
  std::unique_ptr<ClusterDeployment> cluster;
  std::unique_ptr<AftClient> client;
  std::unique_ptr<TxnPlanGenerator> plans;
  std::unique_ptr<AftRequestRunner> runner;
};

}  // namespace bench
}  // namespace aft

#endif  // BENCH_AFT_ENV_H_
