// Figure 4: read caching x data skew. End-to-end latency of the 2-function
// workload over a 100,000-key dataset at Zipf 1.0 / 1.5 / 2.0, comparing
// DynamoDB transaction mode against AFT over DynamoDB (aft-D) and Redis
// (aft-R), each with and without the node data cache.
//
// Paper reference (median / p99 ms):
//            z=1.0                     z=1.5                    z=2.0
//  DDB Txns        78.1 / 158    98.7 / 723    116  / 1140
//  Aft-D NoCache   69.9 / 147    68.6 / 145    67.6 / 149
//  Aft-D Cache     63.6 / 139    60.3 / 132    57.8 / 132
//  Aft-R NoCache   44.9 / 99.5   45.0 / 98.5   45.7 / 99.9
//  Aft-R Cache     42.7 / 92.0   42.7 / 97.5   44.4 / 92.5
//
// Shapes: caching helps aft-D ~10-17% (more as skew rises, since the hot
// head fits in cache); it barely moves aft-R (Redis IO is already cheap);
// DynamoDB transaction mode collapses under contention (conflict retries).

#include "bench/aft_env.h"
#include "src/storage/sim_dynamo.h"
#include "src/storage/sim_redis.h"

namespace aft {
namespace {

using bench::AftEnv;
using bench::BenchClock;
using bench::GetEnvLong;
using bench::PrintTitle;

struct PaperRow {
  double median, p99;
};

WorkloadSpec Fig4Spec(uint64_t keys, double theta) {
  WorkloadSpec spec;
  spec.num_keys = keys;
  spec.zipf_theta = theta;
  return spec;  // 2 functions x (2 reads + 1 write), 4KB — the §6.1.2 workload.
}

void PrintRow(const char* name, const HarnessResult& r, const PaperRow& paper) {
  std::printf("  %-18s p50 %7.2f ms   p99 %8.2f ms   (paper: %6.1f / %6.1f)\n", name,
              r.latency.median_ms, r.latency.p99_ms, paper.median, paper.p99);
}

template <typename EngineT>
HarnessResult RunAftConfig(const WorkloadSpec& spec, const HarnessOptions& harness,
                           bool caching) {
  ClusterOptions cluster_options;
  cluster_options.num_nodes = 1;
  cluster_options.node_options.data_cache_bytes = caching ? 256ull * 1024 * 1024 : 0;
  AftEnv<EngineT> env(BenchClock(), spec, cluster_options);
  return env.Run(harness);
}

HarnessResult RunTxnMode(const WorkloadSpec& spec, const HarnessOptions& harness) {
  RealClock& clock = BenchClock();
  SimDynamo engine(clock);
  (void)LoadPlainDataset(engine, spec);
  FaasPlatform faas(clock);
  TxnPlanGenerator plans(spec);
  DynamoTxnRequestRunner runner(faas, engine, clock, plans);
  return RunClients(clock, runner, harness);
}

}  // namespace
}  // namespace aft

int main() {
  using namespace aft;
  using namespace aft::bench;

  // Latency bench with concurrent clients: pure sleeps, moderate scale.
  BenchClock(/*default_scale=*/0.25, /*default_spin_us=*/0);

  const uint64_t keys = static_cast<uint64_t>(GetEnvLong("AFT_BENCH_KEYS", 100000));
  HarnessOptions harness;
  harness.num_clients = 10;
  harness.requests_per_client = static_cast<size_t>(GetEnvLong("AFT_BENCH_REQUESTS", 150));
  harness.check_anomalies = false;

  PrintTitle("Figure 4: read caching & data skew (2-function txns, " + std::to_string(keys) +
             " keys)");

  struct PaperCol {
    PaperRow txn, aftd_nc, aftd_c, aftr_nc, aftr_c;
  };
  const double zipfs[] = {1.0, 1.5, 2.0};
  const PaperCol paper[] = {
      {{78.1, 158}, {69.9, 147}, {63.6, 139}, {44.9, 99.5}, {42.7, 92.0}},
      {{98.7, 723}, {68.6, 145}, {60.3, 132}, {45.0, 98.5}, {42.7, 97.5}},
      {{116, 1140}, {67.6, 149}, {57.8, 132}, {45.7, 99.9}, {44.4, 92.5}},
  };

  for (int z = 0; z < 3; ++z) {
    const WorkloadSpec spec = Fig4Spec(keys, zipfs[z]);
    std::printf("\n-- Zipf %.1f --\n", zipfs[z]);
    PrintRow("DynamoDB Txns", RunTxnMode(spec, harness), paper[z].txn);
    PrintRow("Aft-D No Caching", RunAftConfig<SimDynamo>(spec, harness, false),
             paper[z].aftd_nc);
    PrintRow("Aft-D Caching", RunAftConfig<SimDynamo>(spec, harness, true), paper[z].aftd_c);
    PrintRow("Aft-R No Caching", RunAftConfig<SimRedis>(spec, harness, false),
             paper[z].aftr_nc);
    PrintRow("Aft-R Caching", RunAftConfig<SimRedis>(spec, harness, true), paper[z].aftr_c);
  }

  PrintTitle("Shape checks");
  std::printf("  expected: caching improves Aft-D more as skew rises; Aft-R barely moves;\n");
  std::printf("  expected: DynamoDB transaction mode degrades sharply with contention.\n");
  return 0;
}
