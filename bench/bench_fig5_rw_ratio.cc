// Figure 5: effect of the read-write ratio. Transactions of 10 total IOs
// (2 functions x 5 IOs), varying the fraction of reads from 0% to 100%,
// AFT over DynamoDB and Redis.
//
// Paper reference (median / p99 ms):
//   Dynamo:  0%% 56.5/130  20%% 58.1/135  40%% 59.3/122  60%% 60.8/123
//            80%% 61.0/123  100%% 58.1/124
//   Redis:   0%% 40.4/94.3  20%% 42.6/100  40%% 42.2/100  60%% 42.1/94.2
//            80%% 43.1/96.7  100%% 42.2/94.1
//
// Shapes: aft-R is flat (reads and writes cost the same over Redis and every
// IO is its own API call); aft-D varies <10% — batched writes make writes
// cheap, each read adds its own API call, and the 100% read point dips
// because the batch-write call disappears.

#include "bench/aft_env.h"
#include "src/storage/sim_dynamo.h"
#include "src/storage/sim_redis.h"

namespace aft {
namespace {

using bench::AftEnv;
using bench::BenchClock;
using bench::GetEnvLong;
using bench::PrintTitle;

struct PaperRow {
  double median, p99;
};
const PaperRow kPaperDynamo[] = {{56.5, 130}, {58.1, 135}, {59.3, 122},
                                 {60.8, 123}, {61.0, 123}, {58.1, 124}};
const PaperRow kPaperRedis[] = {{40.4, 94.3}, {42.6, 100}, {42.2, 100},
                                {42.1, 94.2}, {43.1, 96.7}, {42.2, 94.1}};

template <typename EngineT>
void RunSweep(const char* label, const PaperRow* paper, const HarnessOptions& harness) {
  std::printf("\n-- AFT over %s --\n", label);
  for (int reads = 0; reads <= 5; ++reads) {
    WorkloadSpec spec;
    spec.num_keys = 1000;
    spec.zipf_theta = 1.0;
    spec.num_functions = 2;
    spec.reads_per_function = static_cast<size_t>(reads);
    spec.writes_per_function = static_cast<size_t>(5 - reads);
    ClusterOptions cluster_options;
    cluster_options.num_nodes = 1;
    AftEnv<EngineT> env(BenchClock(), spec, cluster_options);
    const HarnessResult result = env.Run(harness);
    std::printf("  %3d%% reads   p50 %7.2f ms   p99 %8.2f ms   retries %4llu   "
                "(paper: %5.1f / %5.1f)\n",
                reads * 20, result.latency.median_ms, result.latency.p99_ms,
                static_cast<unsigned long long>(env.runner->counters().request_retries.load()),
                paper[reads].median, paper[reads].p99);
  }
}

}  // namespace
}  // namespace aft

int main() {
  using namespace aft;
  using namespace aft::bench;

  // Latency bench with concurrent clients: pure sleeps, moderate scale.
  BenchClock(/*default_scale=*/0.25, /*default_spin_us=*/0);

  HarnessOptions harness;
  harness.num_clients = 10;
  harness.requests_per_client = static_cast<size_t>(GetEnvLong("AFT_BENCH_REQUESTS", 150));
  harness.check_anomalies = false;

  PrintTitle("Figure 5: read-write ratio (10 IOs per transaction, 2 functions)");
  RunSweep<SimDynamo>("DynamoDB", kPaperDynamo, harness);
  RunSweep<SimRedis>("Redis", kPaperRedis, harness);

  PrintTitle("Shape checks");
  std::printf("  expected: Redis flat across ratios; DynamoDB varies <10%%, dip at 100%%.\n");
  return 0;
}
