"""Optional libclang refinement backend.

Contract (enforced by construction): the clang backend may only REMOVE
textual findings it can prove are false positives — it never adds any. So
for every file set, findings(backend=auto) ⊆ findings(backend=text), and the
CI gate is deterministic whether or not libclang is importable. On this
basis `--backend auto` is safe everywhere: no environment can see MORE
findings than the dumb textual scanner.

Today the refiner implements one proof: `confirm_decoder_bounds(path, line)`
re-locates the flagged sink on that line in the real AST (a member call to
reserve/resize, an array-new, or a loop statement). If the AST shows no such
sink there — the textual match was inside an #if 0 region, a macro body the
scanner mis-attributed, or a template the build never instantiates — the
finding is dropped. Any parse error, missing compile command, or libclang
fault fails OPEN (the finding is kept).
"""

from __future__ import annotations

import os


def make_refiner(repo_root: str, compile_commands: str | None):
    """Return a refiner object, or None when libclang is unusable."""
    try:
        from clang import cindex  # noqa: F401
    except Exception:
        return None
    try:
        return _ClangRefiner(repo_root, compile_commands)
    except Exception:
        return None


class _ClangRefiner:
    _SINK_SPELLINGS = {"reserve", "resize"}

    def __init__(self, repo_root: str, compile_commands: str | None):
        from clang import cindex

        self._cindex = cindex
        self._repo_root = repo_root
        self._index = cindex.Index.create()
        self._tus: dict[str, object] = {}
        self._db = None
        cc_dir = None
        if compile_commands:
            cc_dir = os.path.dirname(os.path.abspath(compile_commands))
        elif os.path.exists(os.path.join(repo_root, "build", "compile_commands.json")):
            cc_dir = os.path.join(repo_root, "build")
        if cc_dir:
            try:
                self._db = cindex.CompilationDatabase.fromDirectory(cc_dir)
            except Exception:
                self._db = None

    def _args_for(self, abspath: str) -> list[str]:
        if self._db is not None:
            try:
                cmds = self._db.getCompileCommands(abspath)
                if cmds:
                    args = list(cmds[0].arguments)[1:]  # drop the compiler
                    # Drop the input/output file arguments.
                    out = []
                    skip = False
                    for a in args:
                        if skip:
                            skip = False
                            continue
                        if a in ("-o", "-c"):
                            skip = a == "-o"
                            continue
                        if a == abspath or a.endswith(os.path.basename(abspath)):
                            continue
                        out.append(a)
                    return out
            except Exception:
                pass
        return ["-std=c++20", f"-I{os.path.join(self._repo_root, 'src')}"]

    def _tu(self, path: str):
        if path in self._tus:
            return self._tus[path]
        abspath = os.path.join(self._repo_root, path)
        tu = None
        try:
            tu = self._index.parse(abspath, args=self._args_for(abspath))
        except Exception:
            tu = None
        self._tus[path] = tu
        return tu

    def confirm_decoder_bounds(self, path: str, line: int) -> bool:
        """True = keep the textual finding; False = proven false positive."""
        tu = self._tu(path)
        if tu is None:
            return True  # fail open
        try:
            ck = self._cindex.CursorKind
            abspath = os.path.join(self._repo_root, path)
            found_any_on_line = False
            for cur in tu.cursor.walk_preorder():
                loc = cur.location
                if loc.file is None or loc.line != line:
                    continue
                if os.path.abspath(loc.file.name) != os.path.abspath(abspath):
                    continue
                found_any_on_line = True
                if cur.kind == ck.CALL_EXPR and cur.spelling in self._SINK_SPELLINGS:
                    return True
                if cur.kind in (
                    ck.CXX_NEW_EXPR,
                    ck.FOR_STMT,
                    ck.WHILE_STMT,
                    ck.CALL_EXPR,
                ):
                    return True
            # The AST has nodes on that line but none is a plausible sink:
            # textual false positive, drop it. A line with NO nodes at all is
            # ambiguous (headers parsed out of context) — fail open.
            return not found_any_on_line
        except Exception:
            return True
