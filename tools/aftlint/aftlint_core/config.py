"""Repo-specific configuration for the aftlint checkers.

Everything here is a *visible, reviewable* input to the analysis — the point
of aftlint is that the invariants are machine-checked, so anything the dumb
textual backend cannot derive (an alias's type, a file that is the locking
primitive layer itself) is declared here instead of being silently guessed.
"""

# ---- lock-order --------------------------------------------------------------

# The annotated wrapper layer: its internals ARE the primitives (Mutex::Lock
# calling std::mutex::lock), not acquisition sites of the discipline.
LOCK_ORDER_EXCLUDE = [
    "src/common/mutex.h",
    "src/common/thread_annotations.h",
]

# Expression-text -> canonical lock identity, for member expressions whose
# base object the textual scanner cannot type (captured lambda variables,
# `auto` locals). Keep this list short: parameters and plain locals resolve
# on their own.
LOCK_ALIASES: dict[str, str] = {
    "txn.mu": "TransactionState::mu",
    "txn->mu": "TransactionState::mu",
    "conn->mu": "EventConnection::mu",
    "channel->mu": "Channel::mu",
    "chan->mu": "Channel::mu",
    "peer->send_mu": "Peer::send_mu",
    "loop->mu": "EventLoop::mu",
    "shard.mu": "Shard::mu",
    "shard->mu": "Shard::mu",
}

# Variable-name -> type hints applied in EVERY function, for idiomatic names
# whose declarations the scanner cannot see (loop variables over well-known
# containers, structured bindings).
TYPE_HINTS: dict[str, str] = {}

# ---- decoder-bounds ----------------------------------------------------------

# Files whose decoders consume wire-controlled bytes. The §3.3/PR-3 rule:
# any allocation size or loop bound read off the wire must be clamped against
# the remaining payload before use.
DECODER_FILES = [
    "src/common/serde.h",
    "src/net/frame.cc",
    "src/net/frame.h",
    "src/net/message.cc",
    "src/net/message.h",
    "src/net/client.cc",
    "src/net/server.cc",
    "src/net/tcp_multicast_bus.cc",
    "src/core/records.cc",
    "src/storage/wal.cc",
    "src/storage/wal_recovery.cc",
]

# ---- loop-blocking -----------------------------------------------------------

# Event-loop entry points: functions marked `// aftlint: event-loop` in the
# source are entries too; these names are the repo's known roots so the check
# cannot be defeated by deleting the marker comment.
EVENT_LOOP_ENTRIES = [
    "AftServiceServer::EventLoopMain",
]

# Call-site patterns that block (or may block unboundedly) and therefore must
# never run on an event-loop thread. Matched against masked text, so string
# literals cannot trigger them.
BLOCKING_CALL_PATTERNS = [
    (r"\bsleep_for\s*\(", "std::this_thread::sleep_for blocks the loop thread"),
    (r"\bsleep_until\s*\(", "sleep_until blocks the loop thread"),
    (r"\busleep\s*\(", "usleep blocks the loop thread"),
    (r"\bnanosleep\s*\(", "nanosleep blocks the loop thread"),
    (r"\.Wait\s*\(", "condition-variable Wait blocks the loop thread"),
    (r"\.WaitFor\s*\(", "condition-variable WaitFor blocks the loop thread"),
    (r"\.wait\s*\(", "condition-variable wait blocks the loop thread"),
    (r"\bwait_for\s*\(", "condition-variable wait_for blocks the loop thread"),
    (r"\bRecvAll\s*\(", "blocking RecvAll on the loop thread (use RecvSome)"),
    (r"\bSendAll\s*\(", "blocking SendAll on the loop thread (use SendSome + EPOLLOUT)"),
    (r"\bReadFrame\s*\(", "ReadFrame blocks until a whole frame arrives (use DecodeFrameFromBuffer)"),
    (r"\bWriteFrame\s*\(", "WriteFrame sends blocking (queue on the connection instead)"),
    (r"\bTcpConnect\s*\(", "blocking connect on the loop thread"),
    (r"::connect\s*\(", "blocking connect(2) on the loop thread"),
    (r"\.Accept\s*\(", "blocking Accept on the loop thread (the accept thread owns this)"),
    (r"::accept\s*\(", "blocking accept(2) on the loop thread"),
    (r"\bParallelFor\s*\(", "ParallelFor runs items on the CALLING thread too; it blocks the loop"),
    (r"::read\s*\(", "raw read(2): only legal on a non-blocking fd — annotate with aftlint-allow"),
    (r"::write\s*\(", "raw write(2): only legal on a non-blocking fd — annotate with aftlint-allow"),
    (r"\bsystem\s*\(", "system(3) forks and blocks"),
    (r"\bpopen\s*\(", "popen(3) forks and blocks"),
    (r"\bfsync\s*\(", "fsync blocks on storage"),
    (r"\bfdatasync\s*\(", "fdatasync blocks on storage"),
]

# Blocking-looking calls that are structurally part of the loop itself.
BLOCKING_ALLOWED_NAMES = [
    r"\bepoll_wait\s*\(",  # the loop's one legitimate blocking point
]

# ---- hot-alloc ---------------------------------------------------------------

# Allocation spellings flagged inside `// aftlint: hot` loops. Matched
# against masked text (no string literals / comments). push_back/emplace_back
# are handled separately so the checker can look for a prior reserve().
HOT_ALLOC_PATTERNS = [
    (
        r"\bstd::string\s+[A-Za-z_]\w*\s*[;={(]",
        "std::string constructed inside a hot loop: decode in place "
        "(string_view) or hoist a reused scratch buffer out of the loop",
    ),
    (
        r"\bstd::string\s*[({]",
        "std::string temporary inside a hot loop: decode in place "
        "(string_view) or hoist a reused scratch buffer out of the loop",
    ),
    (
        r"\bnew\b(?!\s*\()",
        "naked new inside a hot loop: allocate outside or use the pool",
    ),
    (
        r"\bmake_unique\s*<",
        "make_unique inside a hot loop allocates per iteration",
    ),
    (
        r"\bmake_shared\s*<",
        "make_shared inside a hot loop allocates per iteration",
    ),
]

# ---- observability -----------------------------------------------------------

# Metric name grammar (docs/OBSERVABILITY.md): aft_<subsystem>_<name>[_unit],
# lower-case snake, leading "aft".
METRIC_NAME_RE = r"aft(_[a-z0-9]+)+"

# Registration call spellings whose first string literal is a metric name.
METRIC_REGISTRATION_FNS = ["GetCounter", "GetGauge", "GetHistogram", "RegisterCallback"]

# Counter names must end in one of these (Prometheus conventions).
COUNTER_SUFFIXES = ["_total"]

# Commit-stage vocabulary (docs/OBSERVABILITY.md "Latency attribution"): the
# only legal values for the `stage` label of aft_commit_stage_seconds. The
# stages are disjoint nested slices of the end-to-end commit; a new stage is
# a protocol change and must be added here AND to the docs table.
STAGE_LABEL_VALUES = [
    "txn_lock_wait",
    "queue_wait_leader",
    "queue_wait_follower",
    "data_flush",
    "barrier",
    "record_write",
    "gossip_publish",
]

# Contention-site name grammar (docs/OBSERVABILITY.md): `layer.object` —
# lower-case snake segments joined by dots (wal.append, net_workers.queue).
SITE_NAME_RE = r"[a-z0-9_]+(\.[a-z0-9_]+)+"

# Executor names feed "<name>.queue" / "<name>.run" site names, so they are a
# single lower-snake segment with no dots.
EXECUTOR_NAME_RE = r"[a-z0-9_]+"

# The file that dispatches every RPC and must time each method.
RPC_DISPATCH = {
    "enum": "MessageType",
    "handler": "HandleRequest",
    "timer": "ScopedHistogramTimer",
}
