"""Finding model + suppression filtering."""

from __future__ import annotations

from dataclasses import dataclass, field

from .source import SourceFile


@dataclass
class Finding:
    check: str  # check name, e.g. "decoder-bounds"
    path: str  # repo-relative path
    line: int  # 1-based
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"

    def key(self) -> tuple[str, str, int]:
        return (self.check, self.path, self.line)


@dataclass
class CheckContext:
    """Everything a checker gets: the file set and a place to put findings."""

    files: dict[str, SourceFile]  # path -> SourceFile
    findings: list[Finding] = field(default_factory=list)
    # Set by the driver when a libclang refinement backend is active.
    clang_refiner: object | None = None
    # Extra per-run outputs (the lock-order checker parks its graph here so
    # the docs generator can render it).
    artifacts: dict[str, object] = field(default_factory=dict)

    def report(self, check: str, path: str, line: int, message: str) -> None:
        src = self.files.get(path)
        if src is not None and src.is_allowed(check, line):
            return
        self.findings.append(Finding(check, path, line, message))
