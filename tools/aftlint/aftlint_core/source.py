"""Source-file model shared by every aftlint checker.

A `SourceFile` holds three views of one C++ file:

  * `text`    — the raw bytes, untouched;
  * `masked`  — the same text with comments and string/char literals replaced
    by spaces (length- and newline-preserving, so offsets and line numbers in
    `masked` are valid in `text`);
  * `comments` — every comment with its line number, which is where the
    aftlint control comments live.

Control comments (all line-anchored):

  * `// aftlint-allow(<check>): <reason>`  — suppress findings of <check> on
    this line or the line below (the reason is mandatory);
  * `// aftlint-expect(<check>)`           — fixture corpus only: the
    self-test asserts a finding of <check> on this exact line;
  * `// aftlint: hot`                      — marks the NEXT loop statement as
    a hot loop (no AFT_LOG allowed inside its body);
  * `// aftlint: event-loop`               — marks the NEXT function as an
    event-loop entry point for the loop-blocking check.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


@dataclass
class Comment:
    line: int  # 1-based
    text: str  # comment text without the // or /* */ delimiters, stripped


@dataclass
class SourceFile:
    path: str  # repo-relative, forward slashes
    text: str
    masked: str = ""
    comments: list[Comment] = field(default_factory=list)
    # check name -> set of suppressed lines (the allow line and the next one).
    allows: dict[str, set[int]] = field(default_factory=dict)
    # check name -> list of lines where the fixture expects a finding.
    expects: dict[str, list[int]] = field(default_factory=dict)
    # lines carrying an `aftlint: hot` marker.
    hot_marks: set[int] = field(default_factory=set)
    # lines carrying an `aftlint: event-loop` marker.
    entry_marks: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        self.masked, self.comments = mask_comments_and_strings(self.text)
        self._parse_control_comments()

    def _parse_control_comments(self) -> None:
        allow_re = re.compile(r"aftlint-allow\(([\w\-, ]+)\)\s*:\s*\S")
        expect_re = re.compile(r"aftlint-expect\(([\w\-, ]+)\)")
        for comment in self.comments:
            m = allow_re.search(comment.text)
            if m:
                for check in m.group(1).split(","):
                    lines = self.allows.setdefault(check.strip(), set())
                    lines.add(comment.line)
                    lines.add(comment.line + 1)
            m = expect_re.search(comment.text)
            if m:
                for check in m.group(1).split(","):
                    self.expects.setdefault(check.strip(), []).append(comment.line)
            stripped = comment.text.strip()
            if re.fullmatch(r"aftlint:\s*hot", stripped):
                self.hot_marks.add(comment.line)
            if re.fullmatch(r"aftlint:\s*event-loop", stripped):
                self.entry_marks.add(comment.line)

    def line_of(self, offset: int) -> int:
        return self.text.count("\n", 0, offset) + 1

    def masked_lines(self) -> list[str]:
        return self.masked.split("\n")

    def is_allowed(self, check: str, line: int) -> bool:
        return line in self.allows.get(check, ())


def mask_comments_and_strings(text: str) -> tuple[str, list[Comment]]:
    """Blank out comments and string/char literals, preserving layout.

    Deliberately dumb and total: a hand-rolled scanner with no preprocessor
    awareness. Raw strings (R"...( )...") are handled because test fixtures
    use them; trigraphs and line-continued comments are not.
    """
    out = list(text)
    comments: list[Comment] = []
    i, n = 0, len(text)
    line = 1

    def blank(start: int, end: int) -> None:
        for j in range(start, end):
            if out[j] != "\n":
                out[j] = " "

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            end = text.find("\n", i)
            if end == -1:
                end = n
            comments.append(Comment(line, text[i + 2 : end].strip()))
            blank(i, end)
            i = end
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            end = n if end == -1 else end + 2
            comments.append(Comment(line, text[i + 2 : end - 2].strip()))
            line += text.count("\n", i, end)
            blank(i, end)
            i = end
            continue
        if c == "R" and text[i : i + 2] == 'R"':
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if m:
                terminator = ")" + m.group(1) + '"'
                end = text.find(terminator, i + m.end())
                end = n if end == -1 else end + len(terminator)
                line += text.count("\n", i, end)
                blank(i, end)
                i = end
                continue
        if c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            end = min(j + 1, n)
            # Keep the quotes themselves so regexes can still see "a string
            # literal starts here"; blank only the contents.
            blank(i + 1, end - 1 if text[min(j, n - 1)] == quote else end)
            line += text.count("\n", i, end)
            i = end
            continue
        i += 1
    return "".join(out), comments


def string_literals(text: str) -> list[tuple[int, str]]:
    """All double-quoted literal contents in raw text with their offsets.

    Works on the RAW text (masking removes contents). Skips escaped quotes;
    good enough for metric-name literals, which are plain identifiers.
    """
    result = []
    for m in re.finditer(r'"((?:[^"\\\n]|\\.)*)"', text):
        result.append((m.start(), m.group(1)))
    return result
