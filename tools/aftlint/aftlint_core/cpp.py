"""Deliberately-dumb-but-total structural scanner for the aftlint checkers.

This is NOT a C++ parser. It is a brace-matching scanner over comment- and
string-masked text that recovers just enough structure for the repo's
invariant checks: which braces open a namespace / class / enum / lambda /
control block / function body, each function's qualified name, parameter
types, `REQUIRES(...)` annotations, and the spans of lambda bodies nested
inside it. Where it cannot classify, it degrades to "plain block", which
every checker treats as inert scope — unknown code is scanned, never
skipped.

The libclang backend (clang_backend.py), when available, re-derives the
same facts from a real AST and is used to discard textual false positives;
it never adds findings, so results degrade gracefully (and deterministically)
to this scanner when libclang is absent.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .source import SourceFile

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "do", "else", "try",
}
NOT_A_FUNCTION_NAME = CONTROL_KEYWORDS | {
    "return", "sizeof", "decltype", "alignof", "typeid", "noexcept",
    "static_assert", "new", "delete", "throw", "void", "defined",
    "assert", "co_return", "co_await",
}

# A qualified identifier directly followed by an open paren: candidate
# function name in a preamble.
_NAME_PAREN_RE = re.compile(r"([A-Za-z_~][\w]*(?:::[A-Za-z_~][\w]*)*)\s*\(")


@dataclass
class Block:
    kind: str  # namespace | class | enum | lambda | control | function | block
    name: str = ""  # class/namespace/function name when known
    open_off: int = 0
    close_off: int = 0  # offset of the matching '}'


@dataclass
class Function:
    qualified_name: str  # e.g. "AftServiceServer::HandleReadable"
    simple_name: str
    class_ctx: str  # innermost enclosing/explicit class, "" for free functions
    params: dict[str, str] = field(default_factory=dict)  # name -> base type
    body_start: int = 0  # offset of the opening '{'
    body_end: int = 0  # offset of the matching '}'
    start_line: int = 0  # line of the opening '{'
    requires: list[str] = field(default_factory=list)  # REQUIRES(...) args
    preamble: str = ""
    # Spans of lambda bodies nested anywhere inside (offset pairs, inclusive
    # of braces). Checkers exclude these when reasoning about "code that runs
    # on this function's thread".
    lambda_spans: list[tuple[int, int]] = field(default_factory=list)


@dataclass
class FileStructure:
    functions: list[Function] = field(default_factory=list)
    # Declaration-site REQUIRES: simple name -> lock expressions. Picked up
    # from prototypes ending in ';' (definitions carry their own).
    decl_requires: dict[str, list[str]] = field(default_factory=dict)
    # class name -> list of (mutex member, field name, line) from GUARDED_BY.
    guarded_fields: list[tuple[str, str, str, int]] = field(default_factory=list)
    # (class, member var, base type) harvested from data-member declarations,
    # so checkers can type `foo_->Bar()` receivers in out-of-line methods.
    members: list[tuple[str, str, str]] = field(default_factory=list)


def _strip_preprocessor(preamble: str) -> str:
    return "\n".join(
        line for line in preamble.split("\n") if not line.lstrip().startswith("#")
    )


_LAMBDA_TAIL_RE = re.compile(
    r"\]\s*(\([^()]*\))?\s*(?:mutable|noexcept|constexpr|\s|->\s*[\w:<>&*,\s]+)*$"
)


def classify_preamble(preamble: str) -> tuple[str, str]:
    """Return (kind, name) for the block a '{' opens, given its preamble."""
    p = _strip_preprocessor(preamble).strip()
    if p.endswith("="):
        return "block", ""  # braced initializer
    m = re.search(r"\bnamespace\s+([\w:]*)\s*$", p)
    if m is not None:
        return "namespace", m.group(1)
    if re.search(r"\bnamespace\s*$", p):
        return "namespace", ""
    if re.search(r"\benum\b", p) and "(" not in p.split("enum")[-1]:
        return "enum", ""
    m = re.search(r"\b(?:class|struct|union)\s+([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^;{]*)?$", p)
    if m is not None:
        return "class", m.group(1)
    if _LAMBDA_TAIL_RE.search(p) and "[" in p:
        return "lambda", ""
    if p.endswith(":") or not p:
        return "block", ""  # case label / access specifier / bare scope
    # Control statement: last name-paren group is a control keyword, or the
    # preamble is a bare keyword (do/else/try).
    last_word = re.findall(r"[A-Za-z_]\w*", p)
    if last_word and last_word[-1] in CONTROL_KEYWORDS and p.rstrip().endswith(last_word[-1]):
        return "control", last_word[-1]
    names = _NAME_PAREN_RE.findall(p)
    control = [n for n in names if n.split("::")[-1] in CONTROL_KEYWORDS]
    if control and not re.search(r"\)\s*(?:const|noexcept|override|final|mutable|->|\w+\([^()]*\))*\s*$", p):
        # `while (...)` / `if (...)` style: the paren group IS the condition.
        if names and names[-1].split("::")[-1] in CONTROL_KEYWORDS:
            return "control", names[-1]
    for name in names:
        simple = name.split("::")[-1]
        if simple in NOT_A_FUNCTION_NAME:
            continue
        # Skip template-argument positions: `std::function<void()>`.
        idx = p.find(name + "(")
        if idx < 0:
            idx = p.find(name)
        if idx > 0 and p[:idx].rstrip().endswith("<"):
            continue
        if simple in CONTROL_KEYWORDS:
            return "control", simple
        return "function", name
    if re.search(r"\boperator\b", p):
        return "function", "operator?"
    if names and all(n.split("::")[-1] in CONTROL_KEYWORDS for n in names):
        return "control", names[-1]
    return "block", ""


def _paren_group_after(text: str, name_end: int) -> tuple[int, int] | None:
    """Span of the balanced paren group starting at/after name_end."""
    i = text.find("(", name_end)
    if i < 0:
        return None
    depth = 0
    for j in range(i, len(text)):
        if text[j] == "(":
            depth += 1
        elif text[j] == ")":
            depth -= 1
            if depth == 0:
                return (i, j + 1)
    return None


_TYPE_STRIP_RE = re.compile(
    r"\b(?:const|volatile|struct|class|typename|unsigned|signed|mutable)\b"
)
_SMART_PTR_RE = re.compile(r"(?:shared_ptr|unique_ptr|weak_ptr)\s*<\s*([\w:]+)")


def base_type_of(decl: str) -> str:
    """Best-effort base type of a parameter/local declaration fragment."""
    decl = _TYPE_STRIP_RE.sub(" ", decl)
    m = _SMART_PTR_RE.search(decl)
    if m:
        return m.group(1).split("::")[-1]
    decl = re.sub(r"<[^<>]*>", "", decl)  # drop one level of template args
    decl = decl.replace("*", " ").replace("&", " ")
    tokens = re.findall(r"[\w:]+", decl)
    if not tokens:
        return ""
    return tokens[0].split("::")[-1]


def parse_params(paren_text: str) -> dict[str, str]:
    """Map parameter name -> base type for a function's parameter list."""
    inner = paren_text.strip()
    if inner.startswith("("):
        inner = inner[1:]
    if inner.endswith(")"):
        inner = inner[:-1]
    params: dict[str, str] = {}
    depth = 0
    part = []
    parts: list[str] = []
    for ch in inner:
        if ch in "<([":
            depth += 1
        elif ch in ">)]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(part))
            part = []
        else:
            part.append(ch)
    parts.append("".join(part))
    for raw in parts:
        raw = raw.split("=")[0].strip()
        if not raw or raw == "void":
            continue
        m = re.search(r"([A-Za-z_]\w*)\s*$", raw)
        if not m:
            continue
        name = m.group(1)
        type_part = raw[: m.start()].strip()
        if not type_part:
            continue  # unnamed or type-only
        params[name] = base_type_of(type_part)
    return params


def extract_structure(src: SourceFile) -> FileStructure:
    """Walk the masked text and recover the structural facts."""
    text = src.masked
    result = FileStructure()
    # ---- declaration-site REQUIRES + GUARDED_BY fields -----------------------
    for m in re.finditer(r"\bREQUIRES\s*\(([^()]*)\)", text):
        # Scan back for the declaring function's name-paren group.
        head = text[: m.start()]
        tail_start = max(head.rfind(";"), head.rfind("{"), head.rfind("}"))
        decl = head[tail_start + 1 :]
        names = _NAME_PAREN_RE.findall(decl)
        names = [n for n in names if n.split("::")[-1] not in NOT_A_FUNCTION_NAME]
        if names:
            locks = [a.strip() for a in m.group(1).split(",") if a.strip()]
            result.decl_requires.setdefault(names[0].split("::")[-1], []).extend(locks)

    # ---- block walk ----------------------------------------------------------
    stack: list[Block] = []
    class_stack: list[str] = []
    func_stack: list[Function] = []
    last_stmt_end = 0  # offset just past the previous ; { or }
    guarded_re = re.compile(r"([A-Za-z_]\w*)\s+GUARDED_BY\s*\(([^()]*)\)")

    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch in ";":
            seg = text[last_stmt_end:i]
            for gm in guarded_re.finditer(seg):
                cls = class_stack[-1] if class_stack else ""
                line = src.line_of(last_stmt_end + gm.start())
                result.guarded_fields.append((cls, gm.group(2).strip(), gm.group(1), line))
            if class_stack and not func_stack:
                hit = _parse_member_decl(seg)
                if hit:
                    result.members.append((class_stack[-1], hit[0], hit[1]))
            last_stmt_end = i + 1
            i += 1
            continue
        if ch == "{":
            preamble = text[last_stmt_end:i]
            kind, name = classify_preamble(preamble)
            close = _matching_brace(text, i)
            blk = Block(kind, name, i, close)
            if kind == "class":
                class_stack.append(name)
            if kind == "enum":
                # Opaque: skip the whole body (enumerator lists are not code).
                last_stmt_end = close + 1
                i = close + 1
                continue
            if kind == "lambda" and func_stack:
                func_stack[-1].lambda_spans.append((i, close))
            if kind == "function":
                fn = _make_function(src, preamble, name, class_stack, i, close)
                result.functions.append(fn)
                func_stack.append(fn)
            stack.append(blk)
            last_stmt_end = i + 1
            i += 1
            continue
        if ch == "}":
            if stack:
                blk = stack.pop()
                if blk.kind == "class" and class_stack:
                    class_stack.pop()
                if blk.kind == "function" and func_stack:
                    func_stack.pop()
            last_stmt_end = i + 1
            i += 1
            continue
        i += 1
    return result


def _make_function(
    src: SourceFile,
    preamble: str,
    name: str,
    class_stack: list[str],
    open_off: int,
    close_off: int,
) -> Function:
    p = _strip_preprocessor(preamble)
    simple = name.split("::")[-1]
    explicit_cls = name.split("::")[-2] if "::" in name else ""
    cls = explicit_cls or (class_stack[-1] if class_stack else "")
    qualified = f"{cls}::{simple}" if cls else simple
    params: dict[str, str] = {}
    span = None
    idx = p.find(name + "(")
    if idx < 0:
        idx = p.find(name)
    if idx >= 0:
        span = _paren_group_after(p, idx + len(name) - 1)
    if span:
        params = parse_params(p[span[0] : span[1]])
    requires = []
    tail = p[span[1] :] if span else p
    for rm in re.finditer(r"\bREQUIRES\s*\(([^()]*)\)", tail):
        requires.extend(a.strip() for a in rm.group(1).split(",") if a.strip())
    return Function(
        qualified_name=qualified,
        simple_name=simple,
        class_ctx=cls,
        params=params,
        body_start=open_off,
        body_end=close_off,
        start_line=src.line_of(open_off),
        requires=requires,
        preamble=p.strip(),
    )


_MEMBER_RE = re.compile(
    r"^(?:(?:mutable|static|constexpr|inline|const|volatile)\s+)*"
    r"([A-Za-z_][\w:]*(?:<[\w:,\s<>*&]*>)?(?:\s*[*&])?)\s+([A-Za-z_]\w*)$"
)
_MEMBER_SKIP_RE = re.compile(r"^\s*(?:using|typedef|friend|template|return|operator)\b")


def _parse_member_decl(seg: str) -> tuple[str, str] | None:
    """(var, base type) for a class data-member declaration segment, or None."""
    seg = re.sub(
        r"\b(?:GUARDED_BY|PT_GUARDED_BY|ACQUIRED_BEFORE|ACQUIRED_AFTER)\s*\([^()]*\)", "", seg
    )
    seg = re.sub(r"^\s*(?:public|private|protected)\s*:", "", seg)
    seg = seg.split("=")[0].split("{")[0].strip()
    if not seg or "(" in seg or _MEMBER_SKIP_RE.match(seg):
        return None
    m = _MEMBER_RE.match(seg)
    if not m:
        return None
    base = base_type_of(m.group(1))
    if not base:
        return None
    return (m.group(2), base)


def _matching_brace(text: str, open_off: int) -> int:
    depth = 0
    for j in range(open_off, len(text)):
        if text[j] == "{":
            depth += 1
        elif text[j] == "}":
            depth -= 1
            if depth == 0:
                return j
    return len(text) - 1


def structure_of(src: SourceFile) -> FileStructure:
    """Memoized extract_structure (checkers share one scan per file)."""
    cached = getattr(src, "_structure", None)
    if cached is None:
        cached = extract_structure(src)
        src._structure = cached
    return cached


def collect_member_types(
    files: dict[str, SourceFile],
) -> tuple[dict[str, dict[str, str]], dict[str, str]]:
    """(class name -> {member var -> base type}, unambiguous flat fallback).

    Classes live in headers, their methods in .cc files, so the map spans the
    whole file set. The flat map types chained receivers (`peer->server->X()`:
    `server` is not a member of the enclosing class) for member names that
    mean exactly one type across every class — ambiguous names (`mu_`,
    `stats_`) are excluded from it."""
    out: dict[str, dict[str, str]] = {}
    flat: dict[str, set[str]] = {}
    for path in sorted(files):
        for cls, var, base in structure_of(files[path]).members:
            out.setdefault(cls, {})[var] = base
            flat.setdefault(var, set()).add(base)
    unique = {var: types.pop() for var, types in flat.items() if len(types) == 1}
    return out, unique


# Receiver-type marker for calls with no explicit receiver (implicit this or
# free function).
IMPLICIT_RECV = "<this>"

# CondVar-protocol method names: several wrapper classes spell these
# (CondVar::Wait, ThreadPool::Wait, ...), so a simple-name union across them
# is guaranteed noise. They resolve only through a typed receiver.
AMBIGUOUS_SIMPLE_NAMES = {"Wait", "WaitFor", "NotifyOne", "NotifyAll"}


def resolve_callees(by_qualified, by_simple, callee: str, recv_type: str, class_ctx: str):
    """Resolve a textual call site to candidate definitions.

    recv_type semantics: "" = explicit receiver of unknown type;
    IMPLICIT_RECV = no explicit receiver; anything else = the receiver's base
    type, resolved strictly — a typed receiver whose method is not in the file
    set resolves to nothing, NOT to everything sharing the name. The
    simple-name union is gated on the repo convention that user functions are
    PascalCase: unioning lowercase callees (size, load, empty, ...) across
    unrelated classes is pure noise.
    """
    if recv_type and recv_type != IMPLICIT_RECV:
        return by_qualified.get(f"{recv_type}::{callee}", [])
    if recv_type == IMPLICIT_RECV and class_ctx:
        hit = by_qualified.get(f"{class_ctx}::{callee}")
        if hit:
            return hit
    if callee[:1].isupper() and callee not in AMBIGUOUS_SIMPLE_NAMES:
        return by_simple.get(callee, [])
    return []


def body_without_lambdas(src: SourceFile, fn: Function) -> str:
    """The function body with nested lambda bodies blanked (layout kept)."""
    body = list(src.masked[fn.body_start : fn.body_end + 1])
    for a, b in fn.lambda_spans:
        for j in range(a + 1, b):  # keep the braces for scope tracking
            rel = j - fn.body_start
            if 0 <= rel < len(body) and body[rel] != "\n":
                body[rel] = " "
    return "".join(body)


def local_decl_types(body: str) -> dict[str, str]:
    """Best-effort name -> base-type map for locals declared in a body."""
    out: dict[str, str] = {}
    # `auto x = std::make_shared<T>(...)` / make_unique: the one auto form
    # whose type is right there in the initializer.
    for m in re.finditer(
        r"\bauto\s+([a-z_]\w*)\s*=\s*std::make_(?:shared|unique)<\s*([\w:]+)", body
    ):
        out.setdefault(m.group(1), m.group(2).split("::")[-1])
    # `Type* x = ...`, `Type& x = ...`, `Type x(` and smart-pointer locals.
    for m in re.finditer(
        r"\b(?:const\s+)?([A-Za-z_][\w:]*(?:<[\w:,\s<>*&]*>)?)\s*[*&]?\s+([a-z_]\w*)\s*[=({]",
        body,
    ):
        type_text, var = m.group(1), m.group(2)
        base = base_type_of(type_text)
        if base and base not in ("auto", "return") and var not in out:
            out[var] = base
    return out
