"""loop-blocking: nothing reachable from an event-loop thread may block.

The PR-4 rule: an epoll loop thread owns every connection on its loop — one
blocking call (connect, a blocking read/write, a sleep, a condvar wait, a
ParallelFor that drains items on the caller) stalls every connection that
loop owns. Handlers run on worker lanes; the loop thread only moves bytes.

Mechanics: build a call graph over the file set (textual, resolved by
receiver type when a parameter/local declaration gives one, otherwise by
simple name — an over-approximation, which is the safe direction here),
take the transitive closure from the event-loop entry points
(`config.EVENT_LOOP_ENTRIES` plus any function annotated
`// aftlint: event-loop`), and flag every call site in a reachable body
matching a blocking pattern.

Lambda bodies are excluded from the traversal: the repo convention is that
lambdas created on the loop thread are handed to the worker pool
(`DispatchRequest`), so code inside them does not run on the loop. The one
inline-fallback path (executor shut down) is a documented shutdown-only
exception. A raw `::read`/`::write` on a non-blocking fd is legal but must
say so: `// aftlint-allow(loop-blocking): <why this fd cannot block>`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .. import config
from ..cpp import (
    IMPLICIT_RECV,
    body_without_lambdas,
    collect_member_types,
    local_decl_types,
    resolve_callees,
    structure_of,
)
from ..findings import CheckContext

CHECK = "loop-blocking"

_CALL_RE = re.compile(r"(?:\b([A-Za-z_]\w*)\s*(?:->|\.)\s*)?\b([A-Za-z_]\w*)\s*\(")
_NOISE = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "defined",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "decltype", "alignof", "noexcept", "assert",
}


@dataclass
class _Fn:
    key: str
    qualified: str
    simple: str
    class_ctx: str
    path: str
    start_line: int
    body: str  # lambda-excised masked body
    body_off: int
    calls: list[tuple[str, str, int]] = field(default_factory=list)  # (recv_type, name, off)


def run(ctx: CheckContext) -> None:
    fns: list[_Fn] = []
    by_simple: dict[str, list[_Fn]] = {}
    by_qualified: dict[str, list[_Fn]] = {}
    entries: list[_Fn] = []

    members, unique_members = collect_member_types(ctx.files)
    for path, src in sorted(ctx.files.items()):
        structure = structure_of(src)
        for fn in structure.functions:
            body = body_without_lambdas(src, fn)
            types = dict(unique_members)
            types.update(members.get(fn.class_ctx, {}))
            types.update(fn.params)
            types.update(local_decl_types(body))
            rec = _Fn(
                key=f"{path}#{fn.qualified_name}#{fn.start_line}",
                qualified=fn.qualified_name,
                simple=fn.simple_name,
                class_ctx=fn.class_ctx,
                path=path,
                start_line=fn.start_line,
                body=body,
                body_off=fn.body_start,
            )
            for m in _CALL_RE.finditer(body):
                recv, callee = m.group(1), m.group(2)
                if callee in _NOISE:
                    continue
                recv_type = types.get(recv, "") if recv else IMPLICIT_RECV
                rec.calls.append((recv_type, callee, m.start()))
            fns.append(rec)
            by_simple.setdefault(rec.simple, []).append(rec)
            by_qualified.setdefault(rec.qualified, []).append(rec)
            if rec.qualified in config.EVENT_LOOP_ENTRIES:
                entries.append(rec)
            else:
                # `// aftlint: event-loop` on one of the three lines above the
                # body also marks an entry (fixtures + future loop code).
                sig_line = src.line_of(fn.body_start)
                if any(line in src.entry_marks for line in range(sig_line - 3, sig_line + 1)):
                    entries.append(rec)

    # ---- reachability --------------------------------------------------------
    reachable: dict[str, list[str]] = {}  # key -> call chain (qualified names)
    work = [(e, [e.qualified]) for e in entries]
    while work:
        rec, chain = work.pop()
        if rec.key in reachable:
            continue
        reachable[rec.key] = chain
        for recv_type, callee, _ in rec.calls:
            targets = resolve_callees(by_qualified, by_simple, callee, recv_type, rec.class_ctx)
            for t in targets:
                if t.key not in reachable:
                    work.append((t, chain + [t.qualified]))

    # ---- blocking scan over reachable bodies --------------------------------
    allowed = [re.compile(p) for p in config.BLOCKING_ALLOWED_NAMES]
    patterns = [(re.compile(p), why) for p, why in config.BLOCKING_CALL_PATTERNS]
    for rec in fns:
        chain = reachable.get(rec.key)
        if chain is None:
            continue
        src = ctx.files[rec.path]
        for pat, why in patterns:
            for m in pat.finditer(rec.body):
                around = rec.body[max(0, m.start() - 16) : m.end()]
                if any(a.search(around) for a in allowed):
                    continue
                line = src.line_of(rec.body_off + m.start())
                via = " -> ".join(chain[-3:]) if len(chain) > 1 else chain[0]
                ctx.report(
                    CHECK,
                    rec.path,
                    line,
                    f"{why}; reachable from event loop via {via}",
                )
