"""Observability discipline (PR-5 rules), three sub-checks:

  * obs-metric-name   — every metric family name literal matches the
    `aft_*` naming grammar from docs/OBSERVABILITY.md, and counters end in
    `_total`. Any single-token string literal starting with "aft" is treated
    as a family name, so names funneled through helper wrappers are covered
    too; the counter-suffix rule applies where the registration kind is
    visible at the call site (GetCounter / CallbackType::kCounter).
  * obs-rpc-coverage  — the RPC dispatch switch handles every MessageType
    enumerator, and the dispatch function opens a ScopedHistogramTimer
    before the switch so every method's latency lands in
    aft_net_rpc_latency_ms. A new RPC type cannot silently skip metrics.
  * obs-hot-log       — no AFT_LOG inside a loop marked `// aftlint: hot`.
    Logging takes a global mutex and formats a stream; on a hot loop that
    is a throughput cliff. Teardown-path logs inside a hot loop carry
    `// aftlint-allow(obs-hot-log): <reason>`.
  * obs-stage-label   — every literal `stage` label value on
    aft_commit_stage_seconds comes from the canonical commit-stage
    vocabulary (config.STAGE_LABEL_VALUES): the stages are disjoint nested
    slices of the end-to-end commit, so an ad-hoc stage name is either a
    typo or an undocumented protocol change.
  * obs-site-name     — contention-site names follow the `layer.object`
    grammar: literals passed to LockSite/QueueSite and to named
    Mutex/SharedMutex constructions must match config.SITE_NAME_RE, and a
    named IoExecutor takes a single lower-snake segment (its sites get
    `.queue` / `.run` appended).
"""

from __future__ import annotations

import re

from .. import config
from ..findings import CheckContext
from ..source import SourceFile, string_literals

NAME_CHECK = "obs-metric-name"
RPC_CHECK = "obs-rpc-coverage"
HOT_CHECK = "obs-hot-log"
STAGE_CHECK = "obs-stage-label"
SITE_CHECK = "obs-site-name"

_FAMILY_RE = re.compile(r"^aft[A-Za-z0-9_]*$")
_GRAMMAR_RE = re.compile("^" + config.METRIC_NAME_RE + "$")

# Literal stage-label spellings: an inline label pair, and the registration
# helper idiom `stage("data_flush", ...)` in files that register the family.
_STAGE_PAIR_RE = re.compile(r'\{\s*"stage"\s*,\s*"([^"]*)"')
_STAGE_HELPER_RE = re.compile(r'\bstage\s*\(\s*"([^"]*)"')

# Literal contention-site spellings: cached-site initializers and named
# mutex constructions (member brace-init or local paren-init).
_SITE_RES = [
    re.compile(r'\b(?:LockSite|QueueSite)\s*\(\s*"([^"]*)"'),
    re.compile(r'\b(?:Mutex|SharedMutex)\s+\w+\s*[({]\s*"([^"]*)"'),
]
# A named executor: the literal after the width argument. Covers direct
# construction (`IoExecutor pool(4, "x")`), new-expressions, and
# make_unique<IoExecutor>(...).
_EXEC_RE = re.compile(r'\bIoExecutor\s*>?\s*(?:\w+\s*)?\(\s*[^";{}]*?,\s*"([^"]*)"')
_SITE_GRAMMAR_RE = re.compile("^" + config.SITE_NAME_RE + "$")
_EXEC_GRAMMAR_RE = re.compile("^" + config.EXECUTOR_NAME_RE + "$")


def run(ctx: CheckContext) -> None:
    enum_values: list[str] = []
    enum_site: tuple[str, int] | None = None
    for path, src in sorted(ctx.files.items()):
        _check_metric_names(ctx, path, src)
        _check_stage_labels(ctx, path, src)
        _check_site_names(ctx, path, src)
        _check_hot_loops(ctx, path, src)
        m = re.search(
            rf"enum\s+class\s+{config.RPC_DISPATCH['enum']}\b[^{{]*\{{([^}}]*)\}}", src.masked
        )
        if m:
            enum_values = re.findall(r"\b(k[A-Z]\w*)\b", m.group(1))
            enum_site = (path, src.line_of(m.start()))
    if enum_values:
        _check_rpc_coverage(ctx, enum_values, enum_site)


def _check_metric_names(ctx: CheckContext, path: str, src: SourceFile) -> None:
    for off, lit in string_literals(src.text):
        if not _FAMILY_RE.match(lit) or lit == "aft":
            continue
        line = src.line_of(off)
        if not _GRAMMAR_RE.match(lit):
            ctx.report(
                NAME_CHECK,
                path,
                line,
                f"metric name '{lit}' violates the aft_* grammar "
                f"(lower-case snake segments: {config.METRIC_NAME_RE})",
            )
            continue
        # Counter-suffix rule, where the kind is visible near the literal.
        window = src.text[max(0, off - 160) : off]
        is_counter = bool(re.search(r"GetCounter\s*\(\s*$", window))
        # Only look for the registration kind within the enclosing statement.
        after = src.text[off : off + 240].split(";")[0]
        if re.search(r"CallbackType::kCounter", after):
            is_counter = True
        if is_counter and not any(lit.endswith(s) for s in config.COUNTER_SUFFIXES):
            ctx.report(
                NAME_CHECK,
                path,
                line,
                f"counter '{lit}' must end in _total (Prometheus counter convention)",
            )
        if not is_counter and lit.endswith("_total") and re.search(
            r"(GetGauge|GetHistogram)\s*\(\s*$", window
        ):
            ctx.report(
                NAME_CHECK,
                path,
                line,
                f"'{lit}' ends in _total but is not registered as a counter",
            )


def _in_code(src: SourceFile, off: int) -> bool:
    """True when the raw-text offset is real code (masking turns comments and
    literal contents into spaces, so a commented-out example never matches)."""
    return off < len(src.masked) and src.masked[off] != " "


def _check_stage_labels(ctx: CheckContext, path: str, src: SourceFile) -> None:
    vocab = set(config.STAGE_LABEL_VALUES)
    registers_family = "aft_commit_stage_seconds" in src.text
    for regex, needs_family in ((_STAGE_PAIR_RE, False), (_STAGE_HELPER_RE, True)):
        if needs_family and not registers_family:
            continue
        for m in regex.finditer(src.text):
            if not _in_code(src, m.start()):
                continue
            value = m.group(1)
            if value not in vocab:
                ctx.report(
                    STAGE_CHECK,
                    path,
                    src.line_of(m.start(1)),
                    f"stage label '{value}' is not in the commit-stage vocabulary "
                    f"({', '.join(config.STAGE_LABEL_VALUES)}); the stages are disjoint "
                    f"slices of the commit — new ones go through the docs table",
                )


def _check_site_names(ctx: CheckContext, path: str, src: SourceFile) -> None:
    for regex in _SITE_RES:
        for m in regex.finditer(src.text):
            if not _in_code(src, m.start()):
                continue
            name = m.group(1)
            if not _SITE_GRAMMAR_RE.match(name):
                ctx.report(
                    SITE_CHECK,
                    path,
                    src.line_of(m.start(1)),
                    f"contention site '{name}' violates the layer.object grammar "
                    f"({config.SITE_NAME_RE})",
                )
    for m in _EXEC_RE.finditer(src.text):
        if not _in_code(src, m.start()):
            continue
        name = m.group(1)
        if not _EXEC_GRAMMAR_RE.match(name):
            ctx.report(
                SITE_CHECK,
                path,
                src.line_of(m.start(1)),
                f"executor name '{name}' must be one lower-snake segment — its "
                f"contention sites are derived as <name>.queue / <name>.run",
            )


def _check_rpc_coverage(
    ctx: CheckContext, enum_values: list[str], enum_site: tuple[str, int] | None
) -> None:
    handler = config.RPC_DISPATCH["handler"]
    enum = config.RPC_DISPATCH["enum"]
    timer = config.RPC_DISPATCH["timer"]
    for path, src in sorted(ctx.files.items()):
        text = src.masked
        for m in re.finditer(rf"\b{handler}\s*\([^;{{]*\)[^;{{]*\{{", text):
            body_start = m.end() - 1
            body_end = _match_brace(text, body_start)
            body = text[body_start:body_end]
            sw = re.search(r"switch\s*\(", body)
            if not sw:
                continue
            line = src.line_of(m.start())
            handled = set(re.findall(rf"case\s+{enum}::(k[A-Z]\w*)", body))
            for value in enum_values:
                if value not in handled:
                    ctx.report(
                        RPC_CHECK,
                        path,
                        src.line_of(body_start + sw.start()),
                        f"{handler} switch does not handle {enum}::{value}; every "
                        f"RPC type must be dispatched (and timed) explicitly",
                    )
            if timer not in body[: sw.start()]:
                ctx.report(
                    RPC_CHECK,
                    path,
                    line,
                    f"{handler} does not open a {timer} before dispatch; per-method "
                    f"RPC latency would go unrecorded",
                )
            return  # one dispatch function per tree
    if enum_site is not None:
        path, line = enum_site
        ctx.report(
            RPC_CHECK,
            path,
            line,
            f"found enum {enum} but no {handler} dispatch switch over it",
        )


def _check_hot_loops(ctx: CheckContext, path: str, src: SourceFile) -> None:
    if not src.hot_marks:
        return
    lines = src.masked.split("\n")
    line_offsets = [0]
    for ln in lines:
        line_offsets.append(line_offsets[-1] + len(ln) + 1)
    for mark in sorted(src.hot_marks):
        # The marker covers the next loop statement within the next 3 lines.
        loop_off = None
        for cand in range(mark, min(mark + 3, len(lines))):
            seg = src.masked[line_offsets[cand - 1] : line_offsets[min(cand + 2, len(lines)) - 1]]
            lm = re.search(r"\b(for|while|do)\b", seg)
            if lm:
                loop_off = line_offsets[cand - 1] + lm.start()
                break
        if loop_off is None:
            ctx.report(
                HOT_CHECK,
                path,
                mark,
                "aftlint: hot marker is not followed by a loop statement",
            )
            continue
        brace = src.masked.find("{", loop_off)
        if brace < 0:
            continue
        end = _match_brace(src.masked, brace)
        for am in re.finditer(r"\bAFT_LOG\s*\(", src.masked[brace:end]):
            ctx.report(
                HOT_CHECK,
                path,
                src.line_of(brace + am.start()),
                "AFT_LOG inside a hot loop (// aftlint: hot): logging takes the "
                "global log mutex and formats a stream on the hot path",
            )


def _match_brace(text: str, open_off: int) -> int:
    depth = 0
    for j in range(open_off, len(text)):
        if text[j] == "{":
            depth += 1
        elif text[j] == "}":
            depth -= 1
            if depth == 0:
                return j
    return len(text)
