"""lock-order: prove the lock-acquisition graph acyclic, and derive it.

Extracts every lock-acquisition site (`MutexLock` / `WriterMutexLock` /
`ReaderMutexLock` RAII guards, plus `REQUIRES(...)` entry capabilities) from
the file set, resolves each to a canonical lock identity
(`Class::member`), and records an edge A -> B whenever B is acquired while
A is held — directly in one function body, or via a call to a function that
may (transitively) acquire B. Lambda bodies are analyzed as their own
anonymous functions: code inside them runs on some thread, but not
necessarily while the enclosing function's locks are held, so their
acquisitions do not propagate into the enclosing function's may-acquire
set.

A cycle in the resulting graph is a potential deadlock and is reported as
one finding per participating edge (anchored at the acquisition evidence).
The acyclic graph, a GUARDED_BY roster, and a topological order are
exported as artifacts so `docs/PROTOCOLS.md`'s lock table is generated from
the code instead of asserted by hand (aftlint --update-docs).

Known textual blind spots (why this is "dumb but total"): manual
`mu.Lock()/Unlock()` pairs outside the RAII wrappers are not tracked (the
wrappers are the repo convention; clang TSA covers the rest), and callees
are resolved by simple name, which over-approximates — a false cycle is
silenced with `// aftlint-allow(lock-order): reason` at the evidence site.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .. import config
from ..cpp import (
    IMPLICIT_RECV,
    Function,
    body_without_lambdas,
    collect_member_types,
    local_decl_types,
    resolve_callees,
    structure_of,
)
from ..findings import CheckContext
from ..source import SourceFile

CHECK = "lock-order"

_ACQ_RE = re.compile(
    r"\b(MutexLock|WriterMutexLock|ReaderMutexLock)\s+([A-Za-z_]\w*)\s*[({]\s*([^;{}]*?)\s*[)}]\s*;"
)
_UNLOCK_RE = re.compile(r"\b([A-Za-z_]\w*)\.Unlock\s*\(\s*\)")
_RELOCK_RE = re.compile(r"\b([A-Za-z_]\w*)\.Lock\s*\(\s*\)")
_CALL_RE = re.compile(r"(?:\b([A-Za-z_]\w*)\s*(->|\.)\s*)?\b([A-Za-z_]\w*)\s*\(")

_CALL_NOISE = {
    # keywords / operators that look like calls
    "if", "for", "while", "switch", "return", "sizeof", "catch",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "decltype", "alignof", "noexcept", "assert", "defined",
    # the lock wrappers themselves
    "MutexLock", "WriterMutexLock", "ReaderMutexLock",
    "Lock", "Unlock", "TryLock", "LockShared", "UnlockShared",
}


@dataclass
class _AnalyzedFn:
    fn_key: str  # unique key (path#qualified#line)
    qualified: str
    simple: str
    class_ctx: str
    path: str
    # canonical lock id -> line of first direct acquisition (REQUIRES excluded)
    direct_acquires: dict[str, int] = field(default_factory=dict)
    # (held lock id, acquired lock id, line) intraprocedural edges
    edges: list[tuple[str, str, int]] = field(default_factory=list)
    # (held set frozen, callee simple name, receiver type or "", line)
    calls: list[tuple[frozenset, str, str, int]] = field(default_factory=list)


def _canonical(expr: str, class_ctx: str, types: dict[str, str], aliases: dict[str, str]) -> str:
    expr = expr.strip()
    expr = re.sub(r"^\*", "", expr)
    expr = expr.replace("this->", "")
    if expr in aliases:
        return aliases[expr]
    m = re.fullmatch(r"([A-Za-z_]\w*)\s*(?:->|\.)\s*([A-Za-z_]\w*)", expr)
    if m:
        obj, member = m.group(1), m.group(2)
        obj_type = types.get(obj, "")
        if obj_type:
            return f"{obj_type}::{member}"
        return aliases.get(f"{obj}->{member}", f"{obj}->{member}")
    if re.fullmatch(r"[A-Za-z_]\w*", expr):
        return f"{class_ctx}::{expr}" if class_ctx else expr
    if re.fullmatch(r"[A-Za-z_]\w*::[A-Za-z_]\w*", expr):
        return expr
    return expr  # give up: the expression text is the identity


def _analyze_region(
    src: SourceFile,
    path: str,
    body: str,
    body_off: int,
    fn: Function,
    class_ctx: str,
    entry_locks: list[str],
    types: dict[str, str],
    out: _AnalyzedFn,
) -> None:
    """Scan one brace-balanced region, tracking RAII lock scopes."""
    aliases = config.LOCK_ALIASES
    # Active locks: list of dicts with depth, var, id, active flag.
    active: list[dict] = [
        {"depth": -1, "var": f"<entry{i}>", "id": lk, "on": True}
        for i, lk in enumerate(entry_locks)
    ]
    depth = 0
    i, n = 0, len(body)
    stmt_start = 0

    def held() -> list[str]:
        return [a["id"] for a in active if a["on"]]

    def process_stmt(stmt: str, off: int) -> None:
        m = _ACQ_RE.search(stmt)
        if m:
            lock_id = _canonical(m.group(3), class_ctx, types, aliases)
            line = src.line_of(body_off + off + m.start())
            for h in held():
                if h != lock_id:
                    out.edges.append((h, lock_id, line))
            if lock_id not in out.direct_acquires:
                out.direct_acquires[lock_id] = line
            active.append({"depth": depth, "var": m.group(2), "id": lock_id, "on": True})
            return
        um = _UNLOCK_RE.search(stmt)
        if um:
            for a in reversed(active):
                if a["var"] == um.group(1):
                    a["on"] = False
                    break
        rm = _RELOCK_RE.search(stmt)
        if rm:
            for a in reversed(active):
                if a["var"] == rm.group(1):
                    a["on"] = True
                    break
        # Call sites while holding at least one lock.
        h = held()
        if not h:
            return
        for cm in _CALL_RE.finditer(stmt):
            recv, callee = cm.group(1), cm.group(3)
            if callee in _CALL_NOISE:
                continue
            recv_type = types.get(recv, "") if recv else IMPLICIT_RECV
            line = src.line_of(body_off + off + cm.start())
            out.calls.append((frozenset(h), callee, recv_type, line))

    while i < n:
        ch = body[i]
        if ch == "{":
            process_stmt(body[stmt_start:i], stmt_start)
            depth += 1
            stmt_start = i + 1
        elif ch == "}":
            process_stmt(body[stmt_start:i], stmt_start)
            depth -= 1
            # A guard declared at depth d dies when its scope closes, i.e.
            # when depth drops BELOW d; guards at the new current depth live.
            active[:] = [a for a in active if a["depth"] <= depth]
            stmt_start = i + 1
        elif ch == ";":
            process_stmt(body[stmt_start : i + 1], stmt_start)
            stmt_start = i + 1
        i += 1


def run(ctx: CheckContext) -> None:
    analyzed: list[_AnalyzedFn] = []
    by_simple: dict[str, list[_AnalyzedFn]] = {}
    by_qualified: dict[str, list[_AnalyzedFn]] = {}
    members, unique_members = collect_member_types(ctx.files)

    for path, src in sorted(ctx.files.items()):
        if any(path.endswith(e) for e in config.LOCK_ORDER_EXCLUDE):
            continue
        structure = structure_of(src)
        for fn in structure.functions:
            body = body_without_lambdas(src, fn)
            types = dict(unique_members)
            types.update(members.get(fn.class_ctx, {}))
            types.update(fn.params)
            types.update(local_decl_types(body))
            types.update(config.TYPE_HINTS)
            entry = [
                _canonical(e, fn.class_ctx, types, config.LOCK_ALIASES)
                for e in (fn.requires or structure.decl_requires.get(fn.simple_name, []))
            ]
            rec = _AnalyzedFn(
                fn_key=f"{path}#{fn.qualified_name}#{fn.start_line}",
                qualified=fn.qualified_name,
                simple=fn.simple_name,
                class_ctx=fn.class_ctx,
                path=path,
            )
            _analyze_region(src, path, body, fn.body_start, fn, fn.class_ctx, entry, types, rec)
            # Lambda bodies: separate anonymous regions (no entry locks, no
            # propagation into the enclosing function).
            for a, b in fn.lambda_spans:
                lam = _AnalyzedFn(
                    fn_key=f"{path}#{fn.qualified_name}#lambda@{a}",
                    qualified=f"{fn.qualified_name}::<lambda>",
                    simple="<lambda>",
                    class_ctx=fn.class_ctx,
                    path=path,
                )
                _analyze_region(
                    src, path, src.masked[a : b + 1], a, fn, fn.class_ctx, [], types, lam
                )
                analyzed.append(lam)
                continue
            analyzed.append(rec)
            by_simple.setdefault(fn.simple_name, []).append(rec)
            by_qualified.setdefault(fn.qualified_name, []).append(rec)

    # ---- transitive may-acquire fixpoint ------------------------------------
    may: dict[str, set[str]] = {a.fn_key: set(a.direct_acquires) for a in analyzed}
    rec_by_key = {a.fn_key: a for a in analyzed}

    def callees_of(rec: _AnalyzedFn, callee: str, recv_type: str) -> list[_AnalyzedFn]:
        return resolve_callees(by_qualified, by_simple, callee, recv_type, rec.class_ctx)

    changed = True
    iterations = 0
    while changed and iterations < 50:
        changed = False
        iterations += 1
        for rec in analyzed:
            acc = may[rec.fn_key]
            before = len(acc)
            for _, callee, recv_type, _ in rec.calls:
                for target in callees_of(rec, callee, recv_type):
                    acc |= may[target.fn_key]
            if len(acc) != before:
                changed = True

    # ---- edges ---------------------------------------------------------------
    edges: dict[tuple[str, str], list[tuple[str, int, str]]] = {}

    def add_edge(a: str, b: str, path: str, line: int, why: str) -> None:
        if a == b:
            return  # simple-name over-approximation noise; TSA owns reentrancy
        src = ctx.files.get(path)
        if src is not None and src.is_allowed(CHECK, line):
            return
        edges.setdefault((a, b), []).append((path, line, why))

    for rec in analyzed:
        for a, b, line in rec.edges:
            add_edge(a, b, rec.path, line, f"{rec.qualified} acquires while holding")
        for held_set, callee, recv_type, line in rec.calls:
            targets = callees_of(rec, callee, recv_type)
            acquired: set[str] = set()
            for t in targets:
                acquired |= may[t.fn_key]
            for h in held_set:
                for b in acquired:
                    add_edge(h, b, rec.path, line, f"{rec.qualified} -> {callee}()")

    # ---- cycle detection -----------------------------------------------------
    graph: dict[str, set[str]] = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())

    cycle_edges = _edges_in_cycles(graph)
    for (a, b) in sorted(cycle_edges):
        sites = edges[(a, b)]
        path, line, why = sites[0]
        ctx.report(
            CHECK,
            path,
            line,
            f"lock-order cycle: edge {a} -> {b} participates in an "
            f"acquisition cycle ({why}); see docs/PROTOCOLS.md lock order",
        )

    # ---- artifacts for the docs generator -----------------------------------
    roster: list[tuple[str, str, str, int]] = []
    for path, src in sorted(ctx.files.items()):
        if not path.startswith("src/"):
            continue
        structure = structure_of(src)
        roster.extend(
            (cls, mutex, fld, line) for cls, mutex, fld, line in structure.guarded_fields
        )
    ctx.artifacts["lock_graph"] = {
        "edges": {k: v for k, v in sorted(edges.items())},
        "cyclic": bool(cycle_edges),
        "order": _topo_order(graph) if not cycle_edges else [],
        "roster": roster,
    }


def _edges_in_cycles(graph: dict[str, set[str]]) -> set[tuple[str, str]]:
    """Edges that lie inside a strongly connected component (Tarjan)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[set[str]] = []
    counter = [0]

    def strongconnect(v: str) -> None:
        # Iterative Tarjan: recursion depth is unbounded on long chains.
        work = [(v, iter(sorted(graph.get(v, ()))))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.add(w)
                    if w == node:
                        break
                if len(scc) > 1:
                    sccs.append(scc)

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)

    bad: set[tuple[str, str]] = set()
    for scc in sccs:
        for a in scc:
            for b in graph.get(a, ()):
                if b in scc:
                    bad.add((a, b))
    return bad


def _topo_order(graph: dict[str, set[str]]) -> list[str]:
    indeg: dict[str, int] = {v: 0 for v in graph}
    for v, outs in graph.items():
        for w in outs:
            indeg[w] = indeg.get(w, 0) + 1
    ready = sorted(v for v, d in indeg.items() if d == 0)
    order: list[str] = []
    while ready:
        v = ready.pop(0)
        order.append(v)
        for w in sorted(graph.get(v, ())):
            indeg[w] -= 1
            if indeg[w] == 0:
                ready.append(w)
        ready.sort()
    return order
