"""decoder-bounds: wire-controlled sizes must be clamped before they allocate.

The PR-3 incident class: a decoder reads a count or length off the wire
(`GetU32`/`GetU64`/`GetI64` into a local) and feeds it to `reserve`,
`resize`, a `std::string`/`std::vector` sized constructor, or a loop bound
without first clamping it against the bytes that could possibly back it
(`remaining()`, the source buffer's `size()`, or a `kMax*` constant). A
20-byte frame could demand a multi-GB allocation.

Taint model (per function, deliberately dumb):

  * SOURCE:   `reader.GetU32(&x)` (any Get{U32,U64,I64}) taints `x`.
  * SANITIZE: any conditional mentioning the tainted variable together with a
    comparison operator — `if (count > reader.remaining() / 4)`,
    `if (len > kMaxFramePayload)` — untaints it from that point on. The
    clamp's *adequacy* is not judged (that is what the fixture corpus and
    review are for); its *presence* is what regressed in PR 3.
  * SINK:     `.reserve(x)`, `.resize(x)`, `new T[x]`, `std::string(x, c)`,
    and loop conditions `i < x` / `i <= x` reached while `x` is tainted.

Only files listed in config.DECODER_FILES are scanned — the rule is about
decoders, not every integer in the tree.
"""

from __future__ import annotations

import re

from .. import config
from ..cpp import extract_structure
from ..findings import CheckContext

CHECK = "decoder-bounds"

_SOURCE_RE = re.compile(r"\bGet(?:U32|U64|I64)\s*\(\s*&\s*([A-Za-z_][\w.\->]*)\s*\)")
_SANITIZE_RE_TMPL = r"(?:if|while|\?)\s*\([^;{{]*\b{var}\b[^;{{]*(?:[<>]=?|==|!=)"
_BARE_CMP_TMPL = r"\b{var}\b\s*(?:[<>]=?|==|!=)|(?:[<>]=?|==|!=)\s*[^;]*\b{var}\b"
_MIN_CLAMP_TMPL = r"(?:std::min|std::clamp)\s*[<(][^;]*\b{var}\b"

_SINK_RES = [
    (re.compile(r"(?:\.|->)(?:reserve|resize)\s*\(([^;]*)\)"), "unclamped wire-controlled size reaches {fn}"),
    (re.compile(r"\bnew\s+[\w:<>]+\s*\[([^\]]*)\]"), "unclamped wire-controlled size reaches operator new[]"),
    (re.compile(r"\bstd::(?:string|vector)\s*[\w<>:]*\s*\(([^;)]*),"), "unclamped wire-controlled size constructs a container"),
]
_LOOP_SINK_RE = re.compile(r"\bfor\s*\([^;{]*;([^;{]*);[^){]*\)")
_WHILE_SINK_RE = re.compile(r"\bwhile\s*\(([^){]*)\)")


def run(ctx: CheckContext) -> None:
    for path, src in sorted(ctx.files.items()):
        if not _in_scope(path):
            continue
        structure = extract_structure(src)
        for fn in structure.functions:
            _scan_function(ctx, path, src, fn)


def _in_scope(path: str) -> bool:
    if path.startswith("tools/aftlint/fixtures/"):
        return True  # the self-test corpus opts in wholesale
    return path in config.DECODER_FILES


def _scan_function(ctx, path, src, fn) -> None:
    body = src.masked[fn.body_start : fn.body_end + 1]
    base = fn.body_start

    tainted: dict[str, int] = {}  # var -> offset where tainted
    sanitized: dict[str, int] = {}  # var -> offset where clamped

    for m in _SOURCE_RE.finditer(body):
        var = m.group(1).split("->")[-1].split(".")[-1]
        if var not in tainted:
            tainted[var] = m.end()

    if not tainted:
        return

    for var, taint_off in tainted.items():
        v = re.escape(var)
        for pat in (
            _SANITIZE_RE_TMPL.format(var=v),
            _MIN_CLAMP_TMPL.format(var=v),
        ):
            sm = re.search(pat, body[taint_off:])
            if sm:
                prev = sanitized.get(var)
                off = taint_off + sm.start()
                if prev is None or off < prev:
                    sanitized[var] = off

    def is_hot(var: str, use_off: int) -> bool:
        if var not in tainted or use_off < tainted[var]:
            return False
        clamp = sanitized.get(var)
        return clamp is None or clamp > use_off

    def report(off: int, message: str) -> None:
        line = src.line_of(base + off)
        if ctx.clang_refiner is not None and not ctx.clang_refiner.confirm_decoder_bounds(
            path, line
        ):
            return
        ctx.report(CHECK, path, line, message)

    for sink_re, msg in _SINK_RES:
        for m in sink_re.finditer(body):
            arg = m.group(1)
            for var in tainted:
                if re.search(rf"\b{re.escape(var)}\b", arg) and is_hot(var, m.start()):
                    fn_name = m.group(0).split("(")[0].strip().lstrip(".")
                    report(
                        m.start(),
                        msg.format(fn=fn_name)
                        + f": '{var}' was read off the wire and never clamped "
                        f"against the remaining payload",
                    )
                    break

    for loop_re in (_LOOP_SINK_RE, _WHILE_SINK_RE):
        for m in loop_re.finditer(body):
            cond = m.group(1)
            cm = re.search(r"(?:<|<=)\s*([A-Za-z_]\w*)", cond)
            if not cm:
                continue
            var = cm.group(1)
            if is_hot(var, m.start()):
                report(
                    m.start(),
                    f"loop bounded by wire-controlled '{var}' without a prior "
                    f"clamp against the remaining payload",
                )
