"""Check registry: runner name -> entry point, plus the finding names each
runner can emit (suppression comments and --checks use the emitted names)."""

from __future__ import annotations

from . import decoder_bounds, hot_alloc, lock_order, loop_blocking, observability

CHECKS = {
    "lock-order": lock_order.run,
    "decoder-bounds": decoder_bounds.run,
    "loop-blocking": loop_blocking.run,
    "observability": observability.run,
    "hot-alloc": hot_alloc.run,
}

EMITTED = {
    "lock-order": ["lock-order"],
    "decoder-bounds": ["decoder-bounds"],
    "loop-blocking": ["loop-blocking"],
    "observability": [
        "obs-metric-name",
        "obs-rpc-coverage",
        "obs-hot-log",
        "obs-stage-label",
        "obs-site-name",
    ],
    "hot-alloc": ["hot-alloc"],
}

ALL_FINDING_NAMES = sorted(n for names in EMITTED.values() for n in names)


def resolve_selection(requested: list[str]) -> tuple[list[str], set[str]]:
    """Map user-requested names (runner or finding names) to
    (runners to execute, finding names to keep)."""
    runners: list[str] = []
    keep: set[str] = set()
    for req in requested:
        if req in CHECKS:
            runners.append(req)
            keep.update(EMITTED[req])
            continue
        hit = [r for r, names in EMITTED.items() if req in names]
        if not hit:
            raise ValueError(
                f"unknown check '{req}' (known: {', '.join(sorted(CHECKS))} "
                f"/ {', '.join(ALL_FINDING_NAMES)})"
            )
        runners.append(hit[0])
        keep.add(req)
    # preserve registry order, dedupe
    ordered = [r for r in CHECKS if r in runners]
    return ordered, keep
