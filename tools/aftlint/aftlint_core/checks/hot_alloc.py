"""hot-alloc: no per-iteration heap allocation inside a `// aftlint: hot` loop.

The PR-7 rule backing the zero-copy commit pipeline: a loop marked
`// aftlint: hot` runs once per request (frame parse, writev flush, version
flush), so one heap allocation inside it is a per-request allocation — the
exact regression the allocations/txn bench gate measures. The marker is the
contract; this check machine-enforces it at the source level:

  * constructing a `std::string` (named or temporary) inside the loop —
    decode in place over a `std::string_view`, or build into a scratch
    buffer reserved OUTSIDE the loop;
  * `push_back`/`emplace_back` on a container with no visible
    `reserve`/`Reserve` call earlier in the file — amortized growth
    reallocates mid-loop (a reserve anywhere before the call site counts:
    the textual backend cannot scope it to the function, and the safe
    direction for a gate that people must live with is fewer false
    positives);
  * naked `new`, `make_unique`, `make_shared` — unconditionally heap.

A genuinely cold site inside a hot loop (error/teardown path that runs once
and then the connection dies) carries
`// aftlint-allow(hot-alloc): <why this path is cold>`.
"""

from __future__ import annotations

import re

from .. import config
from ..findings import CheckContext
from ..source import SourceFile

CHECK = "hot-alloc"

_PUSH_RE = re.compile(r"\b([A-Za-z_]\w*)\s*(?:\.|->)\s*(?:push_back|emplace_back)\s*\(")


def run(ctx: CheckContext) -> None:
    patterns = [(re.compile(p), why) for p, why in config.HOT_ALLOC_PATTERNS]
    for path, src in sorted(ctx.files.items()):
        for body_off, body in _hot_loop_bodies(src):
            for pat, why in patterns:
                for m in pat.finditer(body):
                    ctx.report(CHECK, path, src.line_of(body_off + m.start()), why)
            for m in _PUSH_RE.finditer(body):
                recv = m.group(1)
                if _reserved_before(src, recv, body_off + m.start()):
                    continue
                ctx.report(
                    CHECK,
                    path,
                    src.line_of(body_off + m.start()),
                    f"push_back on '{recv}' inside a hot loop with no prior "
                    f"{recv}.reserve(): amortized growth reallocates on the hot path",
                )


def _reserved_before(src: SourceFile, recv: str, call_off: int) -> bool:
    pat = re.compile(rf"\b{re.escape(recv)}\s*(?:\.|->)\s*[rR]eserve\s*\(")
    m = pat.search(src.masked, 0, call_off)
    return m is not None


def _hot_loop_bodies(src: SourceFile) -> list[tuple[int, str]]:
    """(offset, masked body) of the loop statement each hot marker covers.

    Same marker-to-loop mapping as the obs-hot-log check: the marker applies
    to the next `for`/`while`/`do` within the following 3 lines; a marker
    with no loop is obs-hot-log's finding, not ours.
    """
    if not src.hot_marks:
        return []
    lines = src.masked.split("\n")
    line_offsets = [0]
    for ln in lines:
        line_offsets.append(line_offsets[-1] + len(ln) + 1)
    bodies: list[tuple[int, str]] = []
    for mark in sorted(src.hot_marks):
        loop_off = None
        for cand in range(mark, min(mark + 3, len(lines))):
            seg = src.masked[line_offsets[cand - 1] : line_offsets[min(cand + 2, len(lines)) - 1]]
            lm = re.search(r"\b(for|while|do)\b", seg)
            if lm:
                loop_off = line_offsets[cand - 1] + lm.start()
                break
        if loop_off is None:
            continue
        brace = src.masked.find("{", loop_off)
        if brace < 0:
            continue
        end = _match_brace(src.masked, brace)
        bodies.append((brace, src.masked[brace:end]))
    return bodies


def _match_brace(text: str, open_off: int) -> int:
    depth = 0
    for j in range(open_off, len(text)):
        if text[j] == "{":
            depth += 1
        elif text[j] == "}":
            depth -= 1
            if depth == 0:
                return j
    return len(text)
