"""aftlint — repo-specific static analysis for the AFT codebase.

Four invariant families, machine-checked (see docs/STATIC_ANALYSIS.md):
lock-order acyclicity, decoder bounds, event-loop blocking, and
observability discipline. Textual backend is the deterministic gate;
libclang (when importable) only removes false positives.
"""

__all__ = ["config", "cpp", "findings", "source"]
