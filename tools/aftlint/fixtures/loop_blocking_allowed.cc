// Fixture: an annotated raw read on a non-blocking fd inside an event loop —
// the suppression comment must silence the finding. Zero findings expected.

// aftlint: event-loop
void AllowedWakeDrain(int wake_fd) {
  uint64_t drained;
  // aftlint-allow(loop-blocking): wake_fd is a non-blocking eventfd
  while (::read(wake_fd, &drained, sizeof(drained)) > 0) {
  }
}
