// Fixture: heap allocations inside `// aftlint: hot` loops — string
// construction, unreserved push_back, naked new, make_unique/make_shared.
// Not compiled.

void ParseLoopAllocatesStrings(const Buffer& inbuf) {
  // aftlint: hot
  while (HasFrame(inbuf)) {
    std::string key = NextKey(inbuf);  // aftlint-expect(hot-alloc)
    Handle(std::string(NextValue(inbuf)));  // aftlint-expect(hot-alloc)
  }
}

void FlushLoopGrowsUnreserved(const Queue& frames) {
  std::vector<Span> spans;
  // aftlint: hot
  for (const Frame& frame : frames) {
    spans.push_back(frame.Span());  // aftlint-expect(hot-alloc)
  }
}

void CommitLoopHeapAllocates(const WriteSet& writes) {
  // aftlint: hot
  for (const Write& write : writes) {
    auto* raw = new Record(write);  // aftlint-expect(hot-alloc)
    auto owned = std::make_unique<Record>(write);  // aftlint-expect(hot-alloc)
    auto shared = std::make_shared<Record>(write);  // aftlint-expect(hot-alloc)
    Sink(raw, owned, shared);
  }
}
