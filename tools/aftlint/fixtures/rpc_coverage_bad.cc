// Fixture: the RPC dispatch switch misses an enumerator and never opens the
// latency timer — both must be flagged. This fixture owns the only
// MessageType enum in the corpus. Not compiled.

enum class MessageType : uint8_t {
  kPing = 1,
  kPong = 2,
  kGoodbye = 3,
};

class FixtureServer {
 public:
  std::string HandleRequest(MessageType type) {  // aftlint-expect(obs-rpc-coverage)
    switch (type) {  // aftlint-expect(obs-rpc-coverage)
      case MessageType::kPing:
        return "ping";
      case MessageType::kPong:
        return "pong";
      default:
        return "";
    }
  }
};
