// Fixture: blocking calls reachable from an event-loop entry point, both
// directly and through the textual call graph. Not compiled.

// aftlint: event-loop
void FixtureLoopMain(int epfd) {
  while (Running()) {
    int n = epoll_wait(epfd, Events(), 64, -1);  // the one legal blocking point
    if (n < 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // aftlint-expect(loop-blocking)
    DrainConnection();
  }
}

void DrainConnection() {
  RecvAll(Sock(), Buf(), 64);  // aftlint-expect(loop-blocking)
}

// Not reachable from any event-loop entry: blocking here is fine.
void BackgroundFlusher() {
  SendAll(Sock(), Buf(), 64);
}
