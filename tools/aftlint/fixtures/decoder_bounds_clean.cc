// Fixture: the repo's decoder-hardening idioms — clamp against the remaining
// payload (or a constant) before the size is used. Zero findings expected.

bool CleanClampedReserve(BinaryReader& reader, std::vector<uint64_t>* out) {
  uint32_t count = 0;
  if (!reader.GetU32(&count)) {
    return false;
  }
  if (count > reader.remaining() / 8) {
    return false;  // the src/common/serde.h idiom
  }
  out->reserve(count);
  return true;
}

bool CleanMinClamp(BinaryReader& reader, std::string* out) {
  uint64_t len = 0;
  reader.GetU64(&len);
  const uint64_t take = std::min<uint64_t>(len, kMaxFramePayload);
  out->resize(take);
  for (uint64_t i = 0; i < len; ++i) {  // len was clamped above: no finding
    Consume(i);
  }
  return true;
}
