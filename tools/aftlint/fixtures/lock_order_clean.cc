// Fixture: nested acquisition in ONE direction only — a DAG, not a cycle.
// Also exercises early release: Unlock() ends the hold, so the later
// acquisition in ReleaseThenTake is not nested. Zero findings expected.

class CleanNest {
 public:
  void OuterThenInner() {
    MutexLock o(outer_mu_);
    MutexLock i(inner_mu_);
    Consume();
  }

  void InnerAlone() { MutexLock i(inner_mu_); }

  void ReleaseThenTake() {
    MutexLock i(inner_mu_);
    i.Unlock();
    MutexLock o(outer_mu_);  // not held together with inner_mu_: no edge
  }

  void Consume() {}

 private:
  Mutex outer_mu_;
  Mutex inner_mu_;
};
