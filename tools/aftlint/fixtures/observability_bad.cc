// Fixture: observability-discipline violations — bad metric names, counters
// without _total, a _total non-counter, and a log inside a hot loop.
// Not compiled.

void RegisterBadMetrics(MetricsRegistry& reg) {
  reg.GetCounter("aft_Bad_CamelName", "casing violates the grammar");  // aftlint-expect(obs-metric-name)
  reg.GetCounter("aft_requests", "counter missing _total");  // aftlint-expect(obs-metric-name)
  reg.GetGauge("aft_queue_depth_total", "gauge must not claim _total");  // aftlint-expect(obs-metric-name)
  reg.RegisterCallback(
      "aft_gossip_rounds",  // aftlint-expect(obs-metric-name)
      "callback counter missing _total", obs::CallbackType::kCounter, Callback());
}

void HotLoopWithLog(int n) {
  // aftlint: hot
  for (int i = 0; i < n; ++i) {
    AFT_LOG(Info) << "iteration " << i;  // aftlint-expect(obs-hot-log)
  }
}

void RegisterBadStagesAndSites(MetricsRegistry& reg, const std::string& node) {
  reg.GetHistogram("aft_commit_stage_seconds", "stage histogram", Boundaries(),
                   {{"node", node}, {"stage", "flush_wait"}});  // aftlint-expect(obs-stage-label)
  Mutex flat_name{"commitlock"};  // aftlint-expect(obs-site-name)
  SharedMutex camel_name("Engine.Index");  // aftlint-expect(obs-site-name)
  contention::QueueSite("justonesegment");  // aftlint-expect(obs-site-name)
  IoExecutor pool(4, "net.workers");  // aftlint-expect(obs-site-name)
}
