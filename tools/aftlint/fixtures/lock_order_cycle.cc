// Fixture: deliberate lock-order cycles the lock-order check must flag.
// Not compiled — scanned by aftlint --self-test only.

// ---- intraprocedural ABBA ---------------------------------------------------

class BadPair {
 public:
  void Forward() {
    MutexLock l1(first_mu_);
    MutexLock l2(second_mu_);  // aftlint-expect(lock-order)
  }

  void Backward() {
    MutexLock l1(second_mu_);
    MutexLock l2(first_mu_);  // aftlint-expect(lock-order)
  }

 private:
  Mutex first_mu_;
  Mutex second_mu_;
};

// ---- interprocedural: the second leg of the cycle hides behind a call ------

class Interproc {
 public:
  void LockBoth() {
    MutexLock g(gamma_mu_);
    MutexLock d(delta_mu_);  // aftlint-expect(lock-order)
  }

  void CallsIntoGamma() { MutexLock g(gamma_mu_); }

  void Cycle() {
    MutexLock d(delta_mu_);
    CallsIntoGamma();  // aftlint-expect(lock-order)
  }

 private:
  Mutex gamma_mu_;
  Mutex delta_mu_;
};
