// Fixture: the PR-3 bug class — wire-controlled sizes reaching allocations
// and loop bounds without a clamp. Not compiled.

bool BadReserve(BinaryReader& reader, std::vector<uint64_t>* out) {
  uint32_t count = 0;
  if (!reader.GetU32(&count)) {
    return false;
  }
  out->reserve(count);  // aftlint-expect(decoder-bounds)
  return true;
}

bool BadLoopBound(BinaryReader& reader) {
  uint32_t entries = 0;
  reader.GetU32(&entries);
  uint64_t sum = 0;
  for (uint32_t i = 0; i < entries; ++i) {  // aftlint-expect(decoder-bounds)
    sum += i;
  }
  return sum > 0;
}

bool BadArrayNew(BinaryReader& reader) {
  uint64_t len = 0;
  reader.GetU64(&len);
  char* buf = new char[len];  // aftlint-expect(decoder-bounds)
  delete[] buf;
  return true;
}
