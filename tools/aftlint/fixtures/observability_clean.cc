// Fixture: observability done right — grammar-conforming names, _total on
// counters, hot loop with no logging (and one with an allowed teardown log).
// Zero findings expected.

void RegisterGoodMetrics(MetricsRegistry& reg) {
  reg.GetCounter("aft_requests_total", "conforming counter");
  reg.GetGauge("aft_queue_depth", "conforming gauge");
  reg.GetHistogram("aft_rpc_latency_ms", "conforming histogram");
  reg.RegisterCallback("aft_gossip_rounds_total", "conforming callback counter",
                       obs::CallbackType::kCounter, Callback());
}

void QuietHotLoop(int n) {
  uint64_t sum = 0;
  // aftlint: hot
  for (int i = 0; i < n; ++i) {
    sum += static_cast<uint64_t>(i);
  }
  Publish(sum);
}

void HotLoopWithTeardownLog() {
  // aftlint: hot
  while (Pump()) {
    // aftlint-allow(obs-hot-log): teardown path — logs once, then the loop exits
    AFT_LOG(Warn) << "pump drained; shutting down";
    Stop();
  }
}

void RegisterGoodStagesAndSites(MetricsRegistry& reg, const std::string& node) {
  reg.GetHistogram("aft_commit_stage_seconds", "stage histogram", Boundaries(),
                   {{"node", node}, {"stage", "data_flush"}});
  Mutex commit_mu{"engine.commit"};
  SharedMutex index_mu("engine.index");
  contention::QueueSite("client.pipeline");
  IoExecutor pool(4, "net_workers");
  // A commented example like Mutex bad{"NotChecked"} must stay invisible.
}
