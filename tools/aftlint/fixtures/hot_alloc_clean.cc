// Fixture: hot loops that honor the no-allocation contract — in-place
// string_view decode, a reserved vector, pooled storage, and one documented
// cold path under an allow. Not compiled.

void ParseLoopDecodesInPlace(const Buffer& inbuf) {
  // aftlint: hot
  while (HasFrame(inbuf)) {
    std::string_view key = NextKeyView(inbuf);
    Handle(key);
  }
}

void FlushLoopReservesFirst(const Queue& frames) {
  std::vector<Span> spans;
  spans.reserve(frames.size());
  // aftlint: hot
  for (const Frame& frame : frames) {
    spans.push_back(frame.Span());
  }
}

void CommitLoopUsesScratch(const WriteSet& writes, BinaryWriter& scratch) {
  // aftlint: hot
  for (const Write& write : writes) {
    scratch.Clear();
    EncodeWrite(scratch, write);
    Sink(scratch.data());
  }
}

void TeardownInsideHotLoop(const Queue& frames) {
  // aftlint: hot
  for (const Frame& frame : frames) {
    if (!frame.Valid()) {
      // aftlint-allow(hot-alloc): teardown path — runs once, connection dies
      std::string detail = Describe(frame);
      Fail(detail);
      return;
    }
    Forward(frame);
  }
}
