#!/usr/bin/env python3
"""aft_top: a terminal dashboard over N aft_server metrics endpoints.

Scrapes GET /metrics (Prometheus text exposition 0.0.4) from every endpoint,
keeps the previous sample, and renders DELTA-derived stats — rates are
since-last-scrape, and latency quantiles come from the histogram bucket
deltas of the same window, so the display answers "what is the cluster doing
NOW", not "since boot".

    $ tools/aft_top.py 127.0.0.1:9100 127.0.0.1:9101 127.0.0.1:9102
    $ tools/aft_top.py --once --interval 1 127.0.0.1:9100

Per node: txn/s, commit p50/p99, per-stage p50/p99 from the
aft_commit_stage_seconds breakdown (txn_lock_wait / queue_wait_* /
data_flush / barrier / record_write / gossip_publish), batcher role mix,
backpressure pauses/s, and fsyncs per committed transaction. Pure stdlib.
"""

import argparse
import re
import sys
import time
import urllib.error
import urllib.request

STAGES = [
    "txn_lock_wait",
    "queue_wait_leader",
    "queue_wait_follower",
    "data_flush",
    "barrier",
    "record_write",
    "gossip_publish",
]

# name{label="v",...} value   — the exposition's sample-line shape. Label
# values in this codebase never contain escaped quotes, so a non-greedy
# quoted match is exact enough.
_SAMPLE_RE = re.compile(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+([^ ]+)\s*$')
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="(.*?)"')


def parse_exposition(text):
    """Returns {(name, frozenset(labels.items())): float_value}."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            continue
        name, _, labelstr, value = m.groups()
        labels = dict(_LABEL_RE.findall(labelstr)) if labelstr else {}
        try:
            samples[(name, frozenset(labels.items()))] = float(value)
        except ValueError:
            continue
    return samples


def scrape(endpoint, path="/metrics", timeout=2.0):
    url = "http://%s%s" % (endpoint, path)
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode("utf-8", "replace")


class Snapshot:
    """One scrape of one endpoint, with typed accessors."""

    def __init__(self, samples, when):
        self.samples = samples
        self.when = when

    def value(self, name, **labels):
        """Sum of every sample of `name` whose labels INCLUDE the given ones
        (extra labels like node= are ignored so single-node servers and the
        dashboard agree)."""
        want = set(labels.items())
        total, found = 0.0, False
        for (sname, slabels), v in self.samples.items():
            if sname == name and want.issubset(slabels):
                total += v
                found = True
        return total if found else None

    def buckets(self, name, **labels):
        """[(le_upper_bound, cumulative_count)] sorted, from name_bucket."""
        want = set(labels.items())
        out = []
        for (sname, slabels), v in self.samples.items():
            if sname != name + "_bucket":
                continue
            slabels = dict(slabels)
            le = slabels.pop("le", None)
            if le is None or not want.issubset(slabels.items()):
                continue
            out.append((float("inf") if le == "+Inf" else float(le), v))
        return sorted(out)


def delta(cur, prev, name, **labels):
    """Counter delta over the window; None if the family is absent."""
    a = cur.value(name, **labels)
    if a is None:
        return None
    b = prev.value(name, **labels) if prev is not None else 0.0
    return max(0.0, a - (b or 0.0))


def quantile(cur, prev, name, q, **labels):
    """Quantile from bucket DELTAS (Prometheus histogram_quantile over the
    scrape window): find the bucket holding the q-th delta observation and
    interpolate linearly within it. None when the window saw nothing."""
    cur_b = cur.buckets(name, **labels)
    if not cur_b:
        return None
    prev_b = dict(prev.buckets(name, **labels)) if prev is not None else {}
    deltas = [(le, max(0.0, c - prev_b.get(le, 0.0))) for le, c in cur_b]
    total = deltas[-1][1]
    if total <= 0:
        return None
    rank = q * total
    lower = 0.0
    prev_cum = 0.0
    for le, cum in deltas:
        if cum >= rank:
            if le == float("inf"):
                return lower  # open-ended bucket: report its lower bound
            width_count = cum - prev_cum
            frac = (rank - prev_cum) / width_count if width_count > 0 else 1.0
            return lower + (le - lower) * frac
        lower, prev_cum = le, cum
    return deltas[-1][0]


def fmt_dur(seconds):
    if seconds is None:
        return "-"
    if seconds >= 1.0:
        return "%.2fs" % seconds
    if seconds >= 1e-3:
        return "%.1fms" % (seconds * 1e3)
    if seconds >= 1e-6:
        return "%.0fus" % (seconds * 1e6)
    return "%.0fns" % (seconds * 1e9)


def fmt_rate(v):
    if v is None:
        return "-"
    if v >= 1000:
        return "%.1fk" % (v / 1000.0)
    return "%.1f" % v


def node_row(endpoint, cur, prev, window_s):
    """One endpoint's headline stats dict (values may be None)."""
    committed = delta(cur, prev, "aft_node_txns_committed_total")
    leader = delta(cur, prev, "aft_commit_batch_commits_total", role="leader")
    follower = delta(cur, prev, "aft_commit_batch_commits_total", role="follower")
    pauses = delta(cur, prev, "aft_net_backpressure_pauses_total")
    fsyncs = delta(cur, prev, "aft_wal_fsyncs_total")
    row = {
        "endpoint": endpoint,
        "txn_rate": committed / window_s if committed is not None and window_s > 0 else None,
        "p50": quantile(cur, prev, "aft_node_commit_latency_ms", 0.50),
        "p99": quantile(cur, prev, "aft_node_commit_latency_ms", 0.99),
        "leader_pct": None,
        "pauses_rate": pauses / window_s if pauses is not None and window_s > 0 else None,
        "fsyncs_per_txn": None,
        "stages": {},
    }
    batched = (leader or 0.0) + (follower or 0.0)
    if batched > 0:
        row["leader_pct"] = 100.0 * (leader or 0.0) / batched
    if fsyncs is not None and committed:
        row["fsyncs_per_txn"] = fsyncs / committed
    for stage in STAGES:
        row["stages"][stage] = (
            quantile(cur, prev, "aft_commit_stage_seconds", 0.50, stage=stage),
            quantile(cur, prev, "aft_commit_stage_seconds", 0.99, stage=stage),
        )
    return row


def render(rows, errors, interval, once):
    out = []
    if not once:
        out.append("\x1b[2J\x1b[H")  # clear + home
    out.append("aft_top — %s  (window %.1fs; rates are since-last-scrape)" %
               (time.strftime("%H:%M:%S"), interval))
    out.append("")
    header = "%-22s %8s %9s %9s %8s %9s %10s" % (
        "node", "txn/s", "commit", "commit", "leader", "bp", "fsyncs")
    sub = "%-22s %8s %9s %9s %8s %9s %10s" % (
        "", "", "p50", "p99", "%", "pauses/s", "/txn")
    out.append(header)
    out.append(sub)
    out.append("-" * len(header))
    for row in rows:
        # aft_node_commit_latency_ms buckets are in MILLISECONDS.
        p50 = fmt_dur(row["p50"] / 1e3) if row["p50"] is not None else "-"
        p99 = fmt_dur(row["p99"] / 1e3) if row["p99"] is not None else "-"
        out.append("%-22s %8s %9s %9s %8s %9s %10s" % (
            row["endpoint"], fmt_rate(row["txn_rate"]), p50, p99,
            "%.0f%%" % row["leader_pct"] if row["leader_pct"] is not None else "-",
            fmt_rate(row["pauses_rate"]),
            "%.2f" % row["fsyncs_per_txn"] if row["fsyncs_per_txn"] is not None else "-"))
    out.append("")
    out.append("commit stage breakdown (p50 / p99, this window)")
    stage_header = "%-22s" % "node" + "".join("%16s" % s[:15] for s in STAGES)
    out.append(stage_header)
    out.append("-" * len(stage_header))
    for row in rows:
        cells = []
        for stage in STAGES:
            p50, p99 = row["stages"][stage]
            cells.append("%16s" % ("-" if p50 is None else
                                   "%s/%s" % (fmt_dur(p50), fmt_dur(p99))))
        out.append("%-22s%s" % (row["endpoint"], "".join(cells)))
    for endpoint, err in errors:
        out.append("")
        out.append("!! %s: %s" % (endpoint, err))
    return "\n".join(out)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("endpoints", nargs="+", metavar="HOST:PORT",
                    help="metrics endpoints (aft_server --metrics-port)")
    ap.add_argument("--interval", type=float, default=2.0,
                    help="seconds between scrapes (default 2)")
    ap.add_argument("--once", action="store_true",
                    help="two scrapes one interval apart, print one frame, exit "
                         "(for scripts and the CI smoke)")
    args = ap.parse_args()

    prev = {}
    first = True
    while True:
        rows, errors = [], []
        now = time.monotonic()
        for endpoint in args.endpoints:
            try:
                cur = Snapshot(parse_exposition(scrape(endpoint)), now)
            except (urllib.error.URLError, OSError, TimeoutError) as e:
                errors.append((endpoint, str(e)))
                continue
            p = prev.get(endpoint)
            window = (cur.when - p.when) if p is not None else args.interval
            rows.append(node_row(endpoint, cur, p, window))
            prev[endpoint] = cur
        # The first loop only primes `prev`; its frame would be since-boot
        # numbers, which is exactly what delta mode exists to avoid.
        if not first:
            print(render(rows, errors, args.interval, args.once))
            if args.once:
                return 1 if errors and not rows else 0
        first = False
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":
    sys.exit(main())
