#!/usr/bin/env bash
# CI entry point mirroring .github/workflows/ci.yml for environments without
# GitHub Actions. Runs the 3-way build/test matrix sequentially, then the
# clang-tidy job when the toolchain is present.
#
#   matrix leg 1: RelWithDebInfo            (plain build, full ctest)
#   matrix leg 2: AFT_SANITIZE=thread       (TSan, full ctest)
#   matrix leg 3: AFT_SANITIZE=address      (ASan+UBSan, full ctest)
#
# Each leg runs the full suite under the event-loop server default, then
# re-runs the socket-heavy suites (net + cluster) with
# AFT_NET_THREADING=thread so both server models are covered per leg —
# the same 2-D matrix ci.yml expands into separate jobs — and finally
# hammers the WAL crash-recovery harness (kill -9 children, timing varies)
# a few extra times under the leg's sanitizer.

set -u
cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
rc=0

leg() {  # leg <name> <build-dir> <extra cmake args...>
  local name="$1" dir="$2"; shift 2
  printf '\n==== CI leg: %s ====\n' "$name"
  if cmake -B "$dir" -S . "$@" > /dev/null \
     && cmake --build "$dir" -j "$JOBS" 2>&1 | tail -5 \
     && (cd "$dir" && AFT_NET_THREADING=event ctest --output-on-failure -j "$JOBS") \
     && (cd "$dir" && AFT_NET_THREADING=thread ctest --output-on-failure -R 'net_test|cluster_test|serde_compat_test') \
     && (cd "$dir" && ctest --output-on-failure -R 'wal_recovery_test' --repeat until-fail:3); then
    echo "[PASS] $name"
  else
    echo "[FAIL] $name"
    rc=1
  fi
}

leg "RelWithDebInfo" build-ci-rel -DCMAKE_BUILD_TYPE=RelWithDebInfo

# Metrics smoke: boot the real binary with the HTTP exporter on a
# kernel-assigned port, drive real wire traffic through it
# (--smoke-traffic), and scrape /metrics + /traces + the health surface
# (/healthz /readyz /varz) over bash's /dev/tcp (the exporter answers one
# request per connection, Connection: close). Asserts the key families —
# including the per-stage commit decomposition — are present, the flag echo
# works, and the commit counter is monotone.
printf '\n==== CI leg: metrics smoke ====\n'
smoke_log="$(mktemp)"
build-ci-rel/src/net/aft_server --port 0 --metrics-port 0 --trace-sample 1 \
  --smoke-traffic 1000 > "$smoke_log" 2>&1 &
smoke_pid=$!
mport=""
for _ in $(seq 1 100); do
  mport="$(sed -n 's#.*http://127\.0\.0\.1:\([0-9]*\)/metrics.*#\1#p' "$smoke_log")"
  [ -n "$mport" ] && break
  sleep 0.1
done
scrape() {  # scrape <path>
  exec 3<>"/dev/tcp/127.0.0.1/$mport" || return 1
  printf 'GET %s HTTP/1.1\r\nHost: ci\r\n\r\n' "$1" >&3
  cat <&3
  exec 3<&- 3>&-
}
committed() {  # current value of the node's commit counter
  scrape /metrics | sed -n 's/^aft_node_txns_committed_total{[^}]*} //p'
}
smoke_ok=1
if [ -z "$mport" ]; then smoke_ok=0; fi
if [ "$smoke_ok" = 1 ]; then
  scrape /metrics > "$smoke_log.scrape"
  for family in \
      '^# TYPE aft_node_commit_latency_ms histogram' \
      '^aft_node_data_cache_hits_total' \
      '^aft_commit_set_cache_lookup_' \
      '^aft_commit_batch_rounds_total' \
      '^aft_commit_batch_size_bucket' \
      '^aft_commit_stage_seconds_bucket{[^}]*stage="data_flush"' \
      '^aft_commit_stage_seconds_bucket{[^}]*stage="record_write"' \
      '^aft_net_requests_inflight' \
      '^aft_storage_api_calls_total' \
      '^aft_gossip_\|^aft_net_rpc_latency_ms_bucket'; do
    grep -q "$family" "$smoke_log.scrape" || { echo "  missing: $family"; smoke_ok=0; }
  done
  scrape /traces | grep -q '^\[' || smoke_ok=0
  # Health surface: liveness always 200, readiness 200 once the node booted
  # (gossip idle counts as live on a single-node cluster), /varz echoes every
  # CLI flag as resolved.
  scrape /healthz | grep -q '^ok' || { echo "  /healthz not ok"; smoke_ok=0; }
  scrape /readyz | grep -q '200 OK' || { echo "  /readyz not ready"; smoke_ok=0; }
  scrape /varz | grep -q '^flag.smoke_traffic: 1000' \
    || { echo "  /varz missing flag echo"; smoke_ok=0; }
  # Monotone under load: the commit counter must strictly increase.
  before="$(committed)"
  after="$before"
  for _ in $(seq 1 50); do
    sleep 0.2
    after="$(committed)"
    [ -n "$after" ] && [ "$after" -gt "${before:-0}" ] && break
  done
  if [ -z "$after" ] || [ "$after" -le "${before:-0}" ]; then
    echo "  commit counter not monotone: before=$before after=$after"
    smoke_ok=0
  fi
fi
if [ "$smoke_ok" = 1 ]; then
  echo "[PASS] metrics smoke"
else
  echo "[FAIL] metrics smoke"
  sed 's/^/  server: /' "$smoke_log"
  rc=1
fi
kill "$smoke_pid" 2>/dev/null; wait "$smoke_pid" 2>/dev/null
rm -f "$smoke_log" "$smoke_log.scrape"

TSAN_OPTIONS='halt_on_error=1' \
  leg "TSan" build-ci-tsan -DAFT_SANITIZE=thread
ASAN_OPTIONS='detect_leaks=1' UBSAN_OPTIONS='print_stacktrace=1' \
  leg "ASan+UBSan" build-ci-asan -DAFT_SANITIZE=address

if command -v clang-tidy >/dev/null 2>&1; then
  printf '\n==== CI leg: clang-tidy ====\n'
  cmake -B build-ci-rel -S . > /dev/null   # compile commands export globally
  mapfile -t files < <(find src tests bench examples -name '*.cc' -o -name '*.cpp')
  if clang-tidy -p build-ci-rel --quiet "${files[@]}"; then
    echo "[PASS] clang-tidy"
  else
    echo "[FAIL] clang-tidy"
    rc=1
  fi
else
  echo "[SKIP] clang-tidy (not installed)"
fi

# aftlint: repo-specific invariant checks (mirrors the aftlint CI job).
# Pure-python text backend, so this leg runs on every machine.
printf '\n==== CI leg: aftlint ====\n'
if python3 tools/aftlint/aftlint.py --self-test \
   && python3 tools/aftlint/aftlint.py --backend text --check-docs; then
  echo "[PASS] aftlint"
else
  echo "[FAIL] aftlint"
  rc=1
fi

# clang-format gate; format.sh exits 0 with a notice when absent.
printf '\n==== CI leg: clang-format ====\n'
if tools/format.sh --check; then
  echo "[PASS] clang-format"
else
  echo "[FAIL] clang-format"
  rc=1
fi

exit $rc
