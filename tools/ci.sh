#!/usr/bin/env bash
# CI entry point mirroring .github/workflows/ci.yml for environments without
# GitHub Actions. Runs the 3-way build/test matrix sequentially, then the
# clang-tidy job when the toolchain is present.
#
#   matrix leg 1: RelWithDebInfo            (plain build, full ctest)
#   matrix leg 2: AFT_SANITIZE=thread       (TSan, full ctest)
#   matrix leg 3: AFT_SANITIZE=address      (ASan+UBSan, full ctest)
#
# Each leg runs the full suite under the event-loop server default, then
# re-runs the socket-heavy suites (net + cluster) with
# AFT_NET_THREADING=thread so both server models are covered per leg —
# the same 2-D matrix ci.yml expands into separate jobs.

set -u
cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
rc=0

leg() {  # leg <name> <build-dir> <extra cmake args...>
  local name="$1" dir="$2"; shift 2
  printf '\n==== CI leg: %s ====\n' "$name"
  if cmake -B "$dir" -S . "$@" > /dev/null \
     && cmake --build "$dir" -j "$JOBS" 2>&1 | tail -5 \
     && (cd "$dir" && AFT_NET_THREADING=event ctest --output-on-failure -j "$JOBS") \
     && (cd "$dir" && AFT_NET_THREADING=thread ctest --output-on-failure -R 'net_test|cluster_test'); then
    echo "[PASS] $name"
  else
    echo "[FAIL] $name"
    rc=1
  fi
}

leg "RelWithDebInfo" build-ci-rel -DCMAKE_BUILD_TYPE=RelWithDebInfo
TSAN_OPTIONS='halt_on_error=1' \
  leg "TSan" build-ci-tsan -DAFT_SANITIZE=thread
ASAN_OPTIONS='detect_leaks=1' UBSAN_OPTIONS='print_stacktrace=1' \
  leg "ASan+UBSan" build-ci-asan -DAFT_SANITIZE=address

if command -v clang-tidy >/dev/null 2>&1; then
  printf '\n==== CI leg: clang-tidy ====\n'
  cmake -B build-ci-rel -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  mapfile -t files < <(find src -name '*.cc')
  if clang-tidy -p build-ci-rel --quiet "${files[@]}"; then
    echo "[PASS] clang-tidy"
  else
    echo "[FAIL] clang-tidy"
    rc=1
  fi
else
  echo "[SKIP] clang-tidy (not installed)"
fi

exit $rc
