#!/usr/bin/env bash
# Throughput regression gate over bench JSON files (tools/bench.sh output).
#
# Compares the closed-loop throughput rows ("tput ..." rows emitted by
# bench_net) between a checked-in baseline and a fresh run, and fails when the
# GEOMETRIC MEAN of the per-row ops/sec ratios drops more than the tolerance
# below the baseline. Aggregating is deliberate: a real transport regression
# (a serialized event loop, a single-flighted pipeline) craters most rows at
# once, while short smoke runs on a loaded CI box routinely swing any single
# row past any useful per-row bound. Rows only present on one side are ignored
# (renames don't break the gate), but zero matching rows is an error — a gate
# that silently compares nothing is worse than no gate.
#
# Usage: tools/bench_gate.sh BASELINE.json CURRENT.json [TOLERANCE]
#
#   TOLERANCE   allowed fractional regression of the geomean ratio, default
#               0.30 (30%).

set -euo pipefail

if [[ $# -lt 2 || $# -gt 3 ]]; then
  echo "usage: tools/bench_gate.sh BASELINE.json CURRENT.json [TOLERANCE]" >&2
  exit 2
fi
BASELINE="$1"
CURRENT="$2"
TOLERANCE="${3:-0.30}"

for f in "$BASELINE" "$CURRENT"; do
  if [[ ! -f "$f" ]]; then
    echo "bench_gate: no such file: $f" >&2
    exit 2
  fi
done

# One "<row>\t<ops/sec>" line per throughput row. The JSON is our own
# one-object-per-line format (tools/bench.sh), so sed is sufficient and the
# gate needs no JSON tooling on the CI image. The single-flight "baseline"
# config rows are excluded: that config exists as the comparison yardstick
# for the pipelined transport and its convoy behaviour makes its short-run
# numbers swing far beyond any useful tolerance.
extract() {
  sed -nE 's/.*"row":"(tput [^"]*)".*"txn_per_s":([0-9.]+).*/\1\t\2/p' "$1" \
    | grep -v ' baseline ' | sort
}

BASE_ROWS="$(mktemp)"
CUR_ROWS="$(mktemp)"
trap 'rm -f "$BASE_ROWS" "$CUR_ROWS"' EXIT
extract "$BASELINE" > "$BASE_ROWS"
extract "$CURRENT" > "$CUR_ROWS"

join -t "$(printf '\t')" "$BASE_ROWS" "$CUR_ROWS" | awk -F '\t' -v tol="$TOLERANCE" '
  {
    base = $2 + 0; cur = $3 + 0;
    if (base <= 0) { next }
    ratio = cur / base;
    n++;
    log_sum += log(ratio);
    printf "%-7s %-36s %10.0f -> %10.0f ops/s  (x%.2f)\n",
           (ratio < 1 - tol ? "slow" : "ok"), $1, base, cur, ratio;
  }
  END {
    if (n == 0) { print "bench_gate: no matching throughput rows between the two files" > "/dev/stderr"; exit 1 }
    geomean = exp(log_sum / n);
    floor = 1 - tol;
    if (geomean < floor) {
      printf "bench_gate: FAIL — geomean throughput ratio x%.2f is below x%.2f (%d rows)\n", geomean, floor, n > "/dev/stderr";
      exit 1;
    }
    printf "bench_gate: PASS — geomean throughput ratio x%.2f over %d rows (floor x%.2f)\n", geomean, n, floor;
  }
'
