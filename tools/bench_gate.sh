#!/usr/bin/env bash
# Throughput regression gate over one bench JSON file (tools/bench.sh output).
#
# Gates on a WITHIN-RUN ratio, not on absolute ops/sec: bench_net runs every
# throughput workload under both the pipelined transports ("event", "thread")
# and the single-flight "baseline" config in the same process on the same
# machine, so the speedup of pipelined over baseline is independent of how
# fast the runner happens to be. (Comparing absolute numbers against a
# checked-in file from another machine shifts the ratio with runner speed —
# it fails spuriously on slow runners and masks regressions on fast ones.)
#
# The gate takes the GEOMETRIC MEAN of the per-row speedups at high client
# counts (>= MIN_CLIENTS, default 16 — where pipelining is designed to win;
# the 1-client rows measure per-op latency, not pipeline capacity) and fails
# when it drops below MIN_SPEEDUP. A serialized event loop or a single-
# flighted client pulls the geomean to ~1.0x, far below the floor, while the
# healthy transport sits near 3x even in smoke runs. Zero matching row pairs
# is an error — a gate that silently compares nothing is worse than no gate.
#
# A second within-run gate holds the cross-transaction commit-batching win
# (bench_net's "tput zipf batched|unbatched" rows): geomean batched/unbatched
# ops-per-sec at >= MIN_CLIENTS must also clear MIN_SPEEDUP.
#
# A third within-run gate bounds latency-attribution overhead (bench_obs's
# "commit attribution off|on" rows): attribution-on p50 commit latency must
# stay within MAX_ATTR_RATIO (env, default 1.05) of attribution-off.
#
# A fourth, absolute gate covers allocation count: bench_net's
# "inproc commit" row carries allocs_per_txn — heap allocations per commit
# on the measuring thread. Unlike ops/sec this IS machine-independent (the
# code path allocates what it allocates), so it gates against a checked-in
# ceiling. The zero-copy commit pipeline (PR 7) brought it from ~39 to ~6;
# the ceiling holds the line just above the measured value so a single
# reintroduced per-commit allocation fails visibly.
#
# Usage: tools/bench_gate.sh CURRENT.json [MIN_SPEEDUP] [MIN_CLIENTS] [MAX_ALLOCS]
#
#   MIN_SPEEDUP   geomean (pipelined / baseline) ops-per-sec floor,
#                 default 1.5.
#   MIN_CLIENTS   only rows with at least this many clients count,
#                 default 16.
#   MAX_ALLOCS    allocations-per-txn ceiling on the "inproc commit" row,
#                 default 8.0.

set -euo pipefail

if [[ $# -lt 1 || $# -gt 4 ]]; then
  echo "usage: tools/bench_gate.sh CURRENT.json [MIN_SPEEDUP] [MIN_CLIENTS] [MAX_ALLOCS]" >&2
  exit 2
fi
CURRENT="$1"
MIN_SPEEDUP="${2:-1.5}"
MIN_CLIENTS="${3:-16}"
MAX_ALLOCS="${4:-8.0}"

if [[ ! -f "$CURRENT" ]]; then
  echo "bench_gate: no such file: $CURRENT" >&2
  exit 2
fi

# One "<workload> <config> <clients>\t<ops/sec>" line per closed-loop row.
# The JSON is our own one-object-per-line format (tools/bench.sh), so sed is
# sufficient and the gate needs no JSON tooling on the CI image.
sed -nE 's/.*"row":"tput ([^"]*)".*"txn_per_s":([0-9.]+).*/\1\t\2/p' "$CURRENT" \
  | awk -F '\t' -v floor="$MIN_SPEEDUP" -v min_clients="$MIN_CLIENTS" '
  {
    # $1 is "<workload> <config> <N>c", e.g. "commit event 16c".
    split($1, f, " ");
    workload = f[1]; config = f[2]; clients = f[3] + 0;
    if (clients < min_clients) { next }
    key = workload "/" clients "c";
    if (config == "baseline") { base[key] = $2 + 0 }
    else                      { cur[key "/" config] = $2 + 0 }
  }
  END {
    for (k in cur) {
      split(k, p, "/");
      bkey = p[1] "/" p[2];
      if (!(bkey in base) || base[bkey] <= 0) { continue }
      ratio = cur[k] / base[bkey];
      n++;
      log_sum += log(ratio);
      printf "%-7s %-28s %10.0f -> %10.0f ops/s  (x%.2f vs single-flight)\n",
             (ratio < floor ? "slow" : "ok"), k, base[bkey], cur[k], ratio;
    }
    if (n == 0) {
      print "bench_gate: no pipelined/baseline throughput row pairs found" > "/dev/stderr";
      exit 1;
    }
    geomean = exp(log_sum / n);
    if (geomean < floor) {
      printf "bench_gate: FAIL — geomean pipelined-vs-baseline speedup x%.2f is below x%.2f (%d rows)\n",
             geomean, floor, n > "/dev/stderr";
      exit 1;
    }
    printf "bench_gate: PASS — geomean pipelined-vs-baseline speedup x%.2f over %d rows (floor x%.2f)\n",
           geomean, n, floor;
  }
'

# ---- commit-batching speedup -------------------------------------------------
# Third gate, same within-run-ratio philosophy as the first: bench_net runs
# the Zipfian hot-key RMW closed loop twice in the same process — commit
# batching off ("unbatched": the legacy two-rounds-per-transaction protocol)
# and on ("batched": fused CommitUnits rounds, src/core/commit_batcher.h) —
# over the same bounded-pool simulated engine. The geomean of the per-client-
# count batched/unbatched ops-per-sec ratios at >= MIN_CLIENTS must clear
# MIN_SPEEDUP. A batcher that stops fusing (every round solo) pulls the ratio
# to ~1.0x; the healthy batcher sits near 2x at 16 clients. Zero row pairs is
# an error, as above.
sed -nE 's/.*"row":"tput zipf (batched|unbatched) ([0-9]+)c".*"txn_per_s":([0-9.]+).*/\1\t\2\t\3/p' "$CURRENT" \
  | awk -F '\t' -v floor="$MIN_SPEEDUP" -v min_clients="$MIN_CLIENTS" '
  {
    clients = $2 + 0;
    if (clients < min_clients) { next }
    # Several appended runs may repeat a row; last one wins, as in gate 1.
    if ($1 == "batched") { batched[clients] = $3 + 0 } else { unbatched[clients] = $3 + 0 }
  }
  END {
    for (c in batched) {
      if (!(c in unbatched) || unbatched[c] <= 0) { continue }
      ratio = batched[c] / unbatched[c];
      n++;
      log_sum += log(ratio);
      printf "%-7s zipf/%sc %28.0f -> %10.0f ops/s  (x%.2f vs unbatched)\n",
             (ratio < floor ? "slow" : "ok"), c, unbatched[c], batched[c], ratio;
    }
    if (n == 0) {
      print "bench_gate: no batched/unbatched zipf throughput row pairs found" > "/dev/stderr";
      exit 1;
    }
    geomean = exp(log_sum / n);
    if (geomean < floor) {
      printf "bench_gate: FAIL — geomean batched-vs-unbatched commit speedup x%.2f is below x%.2f (%d rows)\n",
             geomean, floor, n > "/dev/stderr";
      exit 1;
    }
    printf "bench_gate: PASS — geomean batched-vs-unbatched commit speedup x%.2f over %d rows (floor x%.2f)\n",
           geomean, n, floor;
  }
'

# ---- attribution overhead ----------------------------------------------------
# Latency attribution (the per-stage aft_commit_stage_seconds decomposition)
# ships always-on, so its cost is gated like a regression: bench_obs runs the
# same CPU-bound 4-op commit loop with stage timing off and on in one process
# ("commit attribution off|on" rows, best-of-3 each) and attribution-on p50
# commit latency must stay within MAX_ATTR_RATIO of attribution-off (default
# 1.05 — at most 5% slower) plus 2 µs of absolute slack for timer/scheduler
# granularity at the µs commit scale of the zero-latency engine. p50 rather
# than throughput: the within-run median is far less exposed to scheduler
# noise on small CI runners, while a real regression (attribution suddenly
# costing tens of µs) still fails loudly. Same within-run philosophy as
# gates 1-2.
MAX_ATTR_RATIO="${MAX_ATTR_RATIO:-1.05}"
sed -nE 's/.*"row":"commit attribution (off|on)".*"p50_ms":([0-9.]+).*"txn_per_s":([0-9.]+).*/\1\t\2\t\3/p' "$CURRENT" \
  | awk -F '\t' -v ceil="$MAX_ATTR_RATIO" '
  { if ($1 == "off") { off = $2 + 0; off_tps = $3 + 0 } else { on = $2 + 0; on_tps = $3 + 0 } }  # last run wins
  END {
    if (off == 0 || on == 0) {
      print "bench_gate: no commit attribution on/off row pair found" > "/dev/stderr";
      exit 1;
    }
    limit = off * ceil + 0.002;
    if (on > limit) {
      printf "bench_gate: FAIL — attribution-on p50 %.4f ms exceeds %.4f ms (off p50 %.4f ms x%.2f + 2 µs)\n",
             on, limit, off, ceil > "/dev/stderr";
      exit 1;
    }
    printf "bench_gate: PASS — attribution-on p50 %.4f ms vs off %.4f ms (ceiling %.4f ms; tput %.0f -> %.0f txn/s)\n",
           on, off, limit, off_tps, on_tps;
  }
'

# ---- allocations-per-commit ceiling -----------------------------------------
# The file may hold several appended runs; the LAST row of each kind is the
# current one. Missing row (or a bench binary built without the counter) is
# an error for the same reason as zero throughput pairs above. Two commit
# paths are held to the same ceiling: "inproc commit" (bench_net, simulated
# engine) and "local commit" (bench_local_engine, the durable WAL engine —
# real writev + fdatasync must not cost heap allocations either).
for row in "inproc commit" "local commit"; do
  sed -nE 's/.*"row":"'"$row"'".*"allocs_per_txn":([0-9.]+).*/\1/p' "$CURRENT" \
    | awk -v ceiling="$MAX_ALLOCS" -v row="$row" '
    { last = $1 + 0; n++ }
    END {
      if (n == 0) {
        printf "bench_gate: no \"%s\" allocs_per_txn row found\n", row > "/dev/stderr";
        exit 1;
      }
      if (last > ceiling) {
        printf "bench_gate: FAIL — %.1f allocations/txn on the %s path exceeds the %.1f ceiling\n",
               last, row, ceiling > "/dev/stderr";
        exit 1;
      }
      printf "bench_gate: PASS — %.1f allocations/txn on the %s path (ceiling %.1f)\n",
             last, row, ceiling;
    }
  '
done
