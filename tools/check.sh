#!/usr/bin/env bash
# Concurrency-correctness gate for the AFT tree.
#
# Runs, in order:
#   1. aftlint (tools/aftlint) — repo-specific invariants: lock order,
#      decoder bounds, event-loop blocking, observability discipline.
#      Pure-python text backend, so this stage runs everywhere.
#   2. clang-format --check over the tree (via tools/format.sh --check).
#   3. Thread Safety Analysis build (-Werror=thread-safety) — needs clang++.
#   4. clang-tidy over src/, tests/, bench/, examples/ (per .clang-tidy),
#      against the compile_commands.json the main build exports.
#   5. Full ctest suite under TSan          (AFT_SANITIZE=thread).
#   6. Full ctest suite under ASan + UBSan  (AFT_SANITIZE=address).
#
# Stages whose toolchain is missing (no clang/clang-tidy/clang-format) are
# SKIPPED with a notice, not failed: GCC compiles the annotations as no-ops,
# so the aftlint and sanitizer stages still run everywhere. Exit status is
# non-zero iff an executed stage fails.
#
# Usage: tools/check.sh [--quick]   (--quick: sanitizer stages build but run
#                                    only the concurrency stress test)

set -u
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

JOBS="$(nproc 2>/dev/null || echo 4)"
FAILURES=()
SKIPS=()

banner() { printf '\n==== %s ====\n' "$*"; }

run_stage() {  # run_stage <name> <cmd...>
  local name="$1"; shift
  banner "$name"
  if "$@"; then
    echo "[PASS] $name"
  else
    echo "[FAIL] $name"
    FAILURES+=("$name")
  fi
}

ctest_args=(--output-on-failure -j "$JOBS")
if [[ $QUICK -eq 1 ]]; then
  ctest_args+=(-R concurrency_stress_test)
fi

# ---- 1. aftlint --------------------------------------------------------------
if command -v python3 >/dev/null 2>&1; then
  run_stage "aftlint (invariant checks + fixture self-test)" bash -c '
    python3 tools/aftlint/aftlint.py --backend text --check-docs \
    && python3 tools/aftlint/aftlint.py --self-test
  '
else
  SKIPS+=("aftlint (python3 not installed)")
fi

# ---- 2. clang-format ---------------------------------------------------------
# format.sh exits 0 with a [SKIP] notice when clang-format is absent.
run_stage "clang-format --check" tools/format.sh --check

# ---- 3. Thread Safety Analysis build ----------------------------------------
if command -v clang++ >/dev/null 2>&1; then
  run_stage "thread-safety analysis build (clang, -Werror=thread-safety)" \
    bash -c "cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
               -DAFT_THREAD_SAFETY_ANALYSIS=ON > build-tsa-configure.log 2>&1 \
             && cmake --build build-tsa -j $JOBS"
else
  SKIPS+=("thread-safety analysis (clang++ not installed; GCC builds the annotations as no-ops)")
fi

# ---- 4. clang-tidy -----------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  run_stage "clang-tidy (src/ tests/ bench/ examples/)" bash -c '
    # The main build exports compile_commands.json (CMakeLists sets
    # CMAKE_EXPORT_COMPILE_COMMANDS globally); configure it if absent.
    [[ -f build/compile_commands.json ]] || cmake -B build -S . > /dev/null 2>&1 || exit 1
    mapfile -t files < <(find src tests bench examples -name "*.cc" -o -name "*.cpp")
    clang-tidy -p build --quiet "${files[@]}"
  '
else
  SKIPS+=("clang-tidy (not installed)")
fi

# ---- 5. TSan -----------------------------------------------------------------
run_stage "build + ctest under ThreadSanitizer" bash -c "
  cmake -B build-tsan -S . -DAFT_SANITIZE=thread > /dev/null \
  && cmake --build build-tsan -j $JOBS > build-tsan/build.log 2>&1 \
  && (cd build-tsan && TSAN_OPTIONS='halt_on_error=1 second_deadlock_stack=1' \
      ctest ${ctest_args[*]})
"

# ---- 6. ASan + UBSan ---------------------------------------------------------
run_stage "build + ctest under ASan+UBSan" bash -c "
  cmake -B build-asan -S . -DAFT_SANITIZE=address > /dev/null \
  && cmake --build build-asan -j $JOBS > build-asan/build.log 2>&1 \
  && (cd build-asan && ASAN_OPTIONS='detect_leaks=1' UBSAN_OPTIONS='print_stacktrace=1' \
      ctest ${ctest_args[*]})
"

# ---- Summary -----------------------------------------------------------------
banner "summary"
for s in "${SKIPS[@]:-}"; do [[ -n "$s" ]] && echo "[SKIP] $s"; done
if [[ ${#FAILURES[@]} -gt 0 ]]; then
  for f in "${FAILURES[@]}"; do echo "[FAIL] $f"; done
  exit 1
fi
echo "all executed stages passed"
