#!/usr/bin/env bash
# Concurrency-correctness gate for the AFT tree.
#
# Runs, in order:
#   1. Thread Safety Analysis build (-Werror=thread-safety) — needs clang++.
#   2. clang-tidy over src/ (bugprone-*, concurrency-*, ... per .clang-tidy).
#   3. Full ctest suite under TSan          (AFT_SANITIZE=thread).
#   4. Full ctest suite under ASan + UBSan  (AFT_SANITIZE=address).
#
# Stages whose toolchain is missing (no clang/clang-tidy) are SKIPPED with a
# notice, not failed: GCC compiles the annotations as no-ops, so the sanitizer
# stages still run everywhere. Exit status is non-zero iff an executed stage
# fails.
#
# Usage: tools/check.sh [--quick]   (--quick: sanitizer stages build but run
#                                    only the concurrency stress test)

set -u
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

JOBS="$(nproc 2>/dev/null || echo 4)"
FAILURES=()
SKIPS=()

banner() { printf '\n==== %s ====\n' "$*"; }

run_stage() {  # run_stage <name> <cmd...>
  local name="$1"; shift
  banner "$name"
  if "$@"; then
    echo "[PASS] $name"
  else
    echo "[FAIL] $name"
    FAILURES+=("$name")
  fi
}

ctest_args=(--output-on-failure -j "$JOBS")
if [[ $QUICK -eq 1 ]]; then
  ctest_args+=(-R concurrency_stress_test)
fi

# ---- 1. Thread Safety Analysis build ----------------------------------------
if command -v clang++ >/dev/null 2>&1; then
  run_stage "thread-safety analysis build (clang, -Werror=thread-safety)" \
    bash -c "cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
               -DAFT_THREAD_SAFETY_ANALYSIS=ON > build-tsa-configure.log 2>&1 \
             && cmake --build build-tsa -j $JOBS"
else
  SKIPS+=("thread-safety analysis (clang++ not installed; GCC builds the annotations as no-ops)")
fi

# ---- 2. clang-tidy over src/ -------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  run_stage "clang-tidy (src/)" bash -c '
    cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null 2>&1 || exit 1
    mapfile -t files < <(find src -name "*.cc")
    clang-tidy -p build-tidy --quiet "${files[@]}"
  '
else
  SKIPS+=("clang-tidy (not installed)")
fi

# ---- 3. TSan -----------------------------------------------------------------
run_stage "build + ctest under ThreadSanitizer" bash -c "
  cmake -B build-tsan -S . -DAFT_SANITIZE=thread > /dev/null \
  && cmake --build build-tsan -j $JOBS > build-tsan/build.log 2>&1 \
  && (cd build-tsan && TSAN_OPTIONS='halt_on_error=1 second_deadlock_stack=1' \
      ctest ${ctest_args[*]})
"

# ---- 4. ASan + UBSan ---------------------------------------------------------
run_stage "build + ctest under ASan+UBSan" bash -c "
  cmake -B build-asan -S . -DAFT_SANITIZE=address > /dev/null \
  && cmake --build build-asan -j $JOBS > build-asan/build.log 2>&1 \
  && (cd build-asan && ASAN_OPTIONS='detect_leaks=1' UBSAN_OPTIONS='print_stacktrace=1' \
      ctest ${ctest_args[*]})
"

# ---- Summary -----------------------------------------------------------------
banner "summary"
for s in "${SKIPS[@]:-}"; do [[ -n "$s" ]] && echo "[SKIP] $s"; done
if [[ ${#FAILURES[@]} -gt 0 ]]; then
  for f in "${FAILURES[@]}"; do echo "[FAIL] $f"; done
  exit 1
fi
echo "all executed stages passed"
