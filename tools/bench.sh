#!/usr/bin/env bash
# Benchmark runner: builds the headline paper benches, runs them with
# machine-readable row output (AFT_BENCH_JSON), and assembles the rows into
# BENCH_results.json — txn/s + p50/p99 per engine/config. Committed snapshots
# of this file give the repo a perf trajectory across PRs:
#
#   BENCH_baseline.json   recorded BEFORE the parallel storage I/O layer
#   BENCH_results.json    the current tree
#
# Usage: tools/bench.sh [--smoke] [--out FILE]
#
#   --smoke   tiny op counts + aggressive time scale; finishes in well under a
#             minute and exists to catch parallel-I/O regressions that
#             deadlock, crash, or serialize (each bench runs under `timeout`).
#   --out     output path (default BENCH_results.json).
#
# Environment:
#   AFT_BENCH_BUILD_DIR   build tree to (re)use             (default: build)
#   AFT_BENCH_TIMEOUT     per-bench timeout in seconds      (default: 900;
#                                                            smoke: 120)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT=BENCH_results.json
SMOKE=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1 ;;
    --out) OUT="$2"; shift ;;
    *) echo "usage: tools/bench.sh [--smoke] [--out FILE]" >&2; exit 2 ;;
  esac
  shift
done

BUILD_DIR="${AFT_BENCH_BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"
BENCHES=(bench_fig3_end_to_end bench_fig6_txn_length bench_fig7_single_node bench_parallel_io bench_net bench_local_engine bench_obs)

if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
fi
cmake --build "$BUILD_DIR" -j "$JOBS" --target "${BENCHES[@]}"

ROWS="$(mktemp)"
trap 'rm -f "$ROWS"' EXIT

if [[ $SMOKE -eq 1 ]]; then
  # Tiny runs: 3 requests per client, simulated latencies compressed 50x.
  # Numbers are meaningless; the point is that every bench terminates and
  # emits its rows (a deadlocked executor trips the timeout, a serialized
  # one shows up as a CI-time regression).
  export AFT_BENCH_REQUESTS=3
  export AFT_TIME_SCALE=0.02
  # Closed-loop throughput rows feed the bench_gate check (within-run
  # pipelined-vs-baseline speedup), so give them slightly more ops than the
  # latency rows — still sub-minute, but far less noisy than 3-op runs.
  export AFT_BENCH_TPUT_OPS=50
  TIMEOUT="${AFT_BENCH_TIMEOUT:-120}"
  MODE=smoke
else
  TIMEOUT="${AFT_BENCH_TIMEOUT:-900}"
  MODE=full
fi

for bench in "${BENCHES[@]}"; do
  echo
  echo "==== running $bench (timeout ${TIMEOUT}s) ===="
  args=()
  if [[ $SMOKE -eq 1 && "$bench" == bench_obs ]]; then
    # The google-benchmark microbench suite honors CLI flags, not the env
    # knobs above; cut per-config time so smoke stays well inside the timeout.
    args+=(--benchmark_min_time=0.05)
  fi
  AFT_BENCH_JSON="$ROWS" timeout "$TIMEOUT" "$BUILD_DIR/bench/$bench" ${args[@]+"${args[@]}"}
done

for bench in "${BENCHES[@]}"; do
  row_bench="${bench#bench_}"
  if ! grep -q "\"bench\":\"${row_bench}\"" "$ROWS"; then
    echo "error: $bench emitted no rows" >&2
    exit 1
  fi
done

{
  printf '{\n'
  printf '  "mode": "%s",\n' "$MODE"
  printf '  "generated_utc": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  printf '  "results": [\n'
  awk 'NR > 1 { printf ",\n" } { printf "    %s", $0 } END { printf "\n" }' "$ROWS"
  printf '  ]\n'
  printf '}\n'
} > "$OUT"

echo
echo "wrote $OUT ($(grep -c '"bench"' "$OUT") rows, mode=$MODE)"
