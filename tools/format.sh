#!/usr/bin/env bash
# Formatting gate for the AFT tree.
#
#   tools/format.sh           rewrite all C++ sources in place
#   tools/format.sh --check   verify formatting; non-zero exit + diff summary
#                             on drift (the CI mode)
#
# Scope: src/, tests/, bench/, examples/, and the aftlint fixture corpus is
# deliberately EXCLUDED (fixtures pin exact line numbers for
# aftlint-expect comments; reformatting them would invalidate the corpus).
#
# When clang-format is not installed the script SKIPS with exit 0 rather
# than failing: the container toolchain is GCC-only, while CI installs
# clang-format and enforces the gate there.

set -u
cd "$(dirname "$0")/.."

MODE=format
[[ "${1:-}" == "--check" ]] && MODE=check

if ! command -v clang-format >/dev/null 2>&1; then
  echo "[SKIP] clang-format not installed; formatting gate runs in CI"
  exit 0
fi

mapfile -t files < <(
  find src tests bench examples \
    \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' -o -name '*.hpp' \) | sort
)
if [[ ${#files[@]} -eq 0 ]]; then
  echo "no C++ sources found" >&2
  exit 2
fi

if [[ $MODE == format ]]; then
  clang-format -i "${files[@]}"
  echo "formatted ${#files[@]} files"
  exit 0
fi

# --check: list every file whose formatted output differs from disk.
bad=()
for f in "${files[@]}"; do
  if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
    bad+=("$f")
  fi
done
if [[ ${#bad[@]} -gt 0 ]]; then
  echo "formatting drift in ${#bad[@]} file(s):"
  printf '  %s\n' "${bad[@]}"
  echo "run tools/format.sh to fix"
  exit 1
fi
echo "formatting clean (${#files[@]} files)"
